//! The WASP performance harness: runs the §8 scenario suite with the
//! metrics hub recording, measures wall-clock engine throughput
//! alongside the SLO metrics, and writes a machine-readable benchmark
//! report (`BENCH_pr10.json` by default).
//!
//! ```text
//! wasp-bench --quick                         # CI-speed run, dt = 0.5
//! wasp-bench --out BENCH_pr10.json           # full run, dt = 0.25
//! wasp-bench --quick --baseline BENCH_pr10.json --gate 15
//! wasp-bench --quick --jobs 8                # fan repeats across 8 threads
//! ```
//!
//! `--jobs N` fans the (repeat × scenario) grid across a thread pool.
//! Every unit is fully isolated — its own `ScenarioConfig`, its own
//! recording `MetricsHub`, its own engine RNG seeded from `--seed` —
//! so the simulation results are bit-identical at any `--jobs` value;
//! only wall-clock readings move. Per-repeat delay histograms are
//! merged back into one cross-repeat histogram per scenario via
//! `LogHistogram::merge` (the `merged_delay_*` report fields). The
//! report also carries a `thread_sweep` section: the gated scenario
//! re-run with *engine-level* parallelism 1/2/8, proving the parallel
//! tick runtime reproduces the sequential recording byte-for-byte.
//!
//! Wall-clock numbers are machine-dependent, so the report also
//! carries a *calibration score* (a fixed pure-CPU loop measured at
//! bench time) and a calibration-normalized throughput per scenario.
//! The `--baseline`/`--gate` regression check compares normalized
//! throughput, which transfers across machines of different speeds;
//! the gate fails (exit 1) when any scenario regresses by more than
//! `--gate` percent.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use wasp_workloads::prelude::*;

/// One benchmarked scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScenarioBench {
    /// Scenario id, e.g. `section_8_4_topk`.
    name: String,
    /// Controller label.
    controller: String,
    /// Wall-clock seconds for the whole run (engine + controller).
    wall_s: f64,
    /// Simulated seconds covered.
    sim_s: f64,
    /// Engine ticks executed (one per `dt`).
    ticks: u64,
    /// Engine throughput: ticks per wall-clock second.
    ticks_per_s: f64,
    /// Simulated seconds per wall-clock second.
    sim_speedup: f64,
    /// Source events simulated per wall-clock second.
    events_per_s: f64,
    /// Calibration-normalized throughput: ticks per mega-op of the
    /// calibration loop (machine-independent, the gated quantity).
    ticks_per_mop: f64,
    /// End-to-end delivery-delay quantiles (seconds).
    delay_p50_s: f64,
    delay_p95_s: f64,
    delay_p99_s: f64,
    /// Delivered / (generated × end-to-end selectivity).
    delivered_ratio: f64,
    /// Adaptation actions annotated during the run.
    actions: u64,
    /// `(failure_t_s, recovery_s)` per injected site failure.
    recoveries: Vec<FailureRecovery>,
    /// Delay quantiles over *all* repeats' histogram shards merged via
    /// `LogHistogram::merge` (absent in pre-PR4 baselines).
    #[serde(default)]
    merged_delay_p50_s: f64,
    #[serde(default)]
    merged_delay_p95_s: f64,
    #[serde(default)]
    merged_delay_p99_s: f64,
    /// End-to-end delay share per attribution component, indexed by
    /// `wasp_xray::Component::ALL` (queue, service, transit,
    /// backpressure, migration, control). Empty for microbench rows
    /// and pre-PR8 baselines; used by the gate to blame the component
    /// whose share moved most when throughput regresses.
    #[serde(default)]
    xray_shares: Vec<f64>,
    /// 95th-percentile modeled recovery replay (seconds). Zero for
    /// every row but the delta-chain scenario (and in pre-PR10
    /// baselines).
    #[serde(default)]
    replay_p95_s: f64,
    /// Total full-snapshot compaction volume (MB). Zero for every row
    /// but the delta-chain scenario (and in pre-PR10 baselines).
    #[serde(default)]
    compaction_mb: f64,
}

/// One engine-parallelism point of the determinism/throughput sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ThreadSweepEntry {
    /// Engine worker threads (`Engine::set_parallelism`).
    engine_jobs: usize,
    /// Calibration-normalized throughput at this parallelism.
    ticks_per_mop: f64,
    /// Whether the run's `RunMetrics` serialized byte-identically to
    /// the `engine_jobs = 1` reference run.
    bit_identical: bool,
}

/// Time-to-recover for one injected failure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct FailureRecovery {
    /// When the failure was observed (sim seconds).
    at_s: f64,
    /// Seconds until the delay re-stabilized.
    recovery_s: f64,
}

/// The full benchmark report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    /// Report schema version.
    version: u32,
    /// True for `--quick` (dt = 1.0) runs.
    quick: bool,
    /// Testbed seed.
    seed: u64,
    /// Simulation tick used.
    dt: f64,
    /// Calibration score: mega-ops/s of the fixed CPU loop.
    calibration_mops: f64,
    /// Driver worker threads the grid was fanned across.
    #[serde(default)]
    jobs: usize,
    /// Per-scenario results.
    scenarios: Vec<ScenarioBench>,
    /// Engine-parallelism determinism/throughput sweep (gated scenario
    /// at `engine_jobs` ∈ {1, 2, 8}).
    #[serde(default)]
    thread_sweep: Vec<ThreadSweepEntry>,
}

fn usage() -> ! {
    eprintln!(
        "usage: wasp-bench [--quick] [--seed N] [--repeat N] [--jobs N] [--out FILE] \
         [--baseline FILE] [--gate PCT] [--csv FILE] [--prom FILE]"
    );
    std::process::exit(2);
}

/// A fixed reference workload timed at bench time; its measured
/// mega-ops/s calibrates wall-clock throughput so the regression gate
/// transfers across machines. The kernel mixes data-dependent memory
/// walks over a multi-MB table with float math so that it slows down
/// under the same cache/memory contention that slows the simulator —
/// a register-only loop would not, and the normalized ratio would
/// drift with neighbor load. Kept short (~10 ms) because one sample
/// is taken right next to *every* scenario repeat: time-adjacent
/// pairing cancels frequency scaling out of the ratio. Under
/// `--jobs > 1` the sample runs on the same worker thread as its
/// paired scenario, so both see the same sibling contention and the
/// ratio stays comparable to a single-threaded run.
fn calibrate() -> f64 {
    const TABLE: usize = 1 << 19; // 512k u64 = 4 MB, larger than L2
    const OPS: u64 = 2_000_000;
    let mut table: Vec<u64> = Vec::with_capacity(TABLE);
    let mut x = 0x9e3779b97f4a7c15u64;
    for _ in 0..TABLE {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        table.push(x);
    }
    let mut acc = 0.0f64;
    let mut idx = 0usize;
    let t0 = Instant::now();
    for _ in 0..OPS {
        let v = table[idx];
        idx = (v as usize) & (TABLE - 1);
        acc += (v as f64).sqrt() * 1e-12;
    }
    let dt = t0.elapsed().as_secs_f64();
    // `acc` must stay observable or the loop folds away.
    assert!(acc.is_finite());
    std::hint::black_box(acc);
    (OPS as f64 / dt) / 1e6
}

/// One timed repeat of a scenario: a calibration sample taken right
/// next to it, and the run's wall time.
#[derive(Debug, Clone, Copy)]
struct TimedRepeat {
    mops: f64,
    wall_s: f64,
    ticks: u64,
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Folds the timed repeats and the last run's metrics into one report
/// row. The gated quantity is the *median* calibration-normalized
/// ratio over the repeats: time-adjacent pairing cancels slow
/// machine-speed drift, and the median is robust to one-off scheduler
/// hiccups in either direction.
fn summarize_scenario(
    name: &str,
    samples: &[TimedRepeat],
    result: &ExperimentResult,
    merged: &wasp_metrics::LogHistogram,
) -> (ScenarioBench, f64) {
    let mut ratios: Vec<f64> = samples
        .iter()
        .map(|s| (s.ticks as f64 / s.wall_s.max(1e-9)) / s.mops.max(1e-9))
        .collect();
    let mut mops_samples: Vec<f64> = samples.iter().map(|s| s.mops).collect();
    let ticks_per_mop = median(&mut ratios);
    let mops_med = median(&mut mops_samples);
    let wall_s = samples.iter().fold(f64::INFINITY, |a, s| a.min(s.wall_s));
    let m = &result.metrics;
    let sim_s = m.ticks().last().map(|r| r.t).unwrap_or(0.0);
    let ticks = m.ticks().len() as u64;
    let ticks_per_s = ticks as f64 / wall_s.max(1e-9);
    let recoveries = recovery_times(m)
        .into_iter()
        .map(|(at_s, recovery_s)| FailureRecovery { at_s, recovery_s })
        .collect();
    let bench = ScenarioBench {
        name: name.to_string(),
        controller: result.label.clone(),
        wall_s,
        sim_s,
        ticks,
        ticks_per_s,
        sim_speedup: sim_s / wall_s.max(1e-9),
        events_per_s: m.total_generated() / wall_s.max(1e-9),
        ticks_per_mop,
        delay_p50_s: m.delay_quantile(0.5).unwrap_or(0.0),
        delay_p95_s: m.delay_quantile(0.95).unwrap_or(0.0),
        delay_p99_s: m.delay_quantile(0.99).unwrap_or(0.0),
        delivered_ratio: m.total_delivered()
            / (m.total_generated() * result.e2e_selectivity).max(1e-9),
        actions: m.actions().len() as u64,
        recoveries,
        merged_delay_p50_s: merged.quantile(0.5).unwrap_or(0.0),
        merged_delay_p95_s: merged.quantile(0.95).unwrap_or(0.0),
        merged_delay_p99_s: merged.quantile(0.99).unwrap_or(0.0),
        xray_shares: result
            .xray
            .as_ref()
            .map(|x| x.shares().to_vec())
            .unwrap_or_default(),
        replay_p95_s: result.replay_p95_s.unwrap_or(0.0),
        compaction_mb: result.compaction_mb.unwrap_or(0.0),
    };
    (bench, mops_med)
}

/// Regression blame: the attribution component whose end-to-end delay
/// share moved most between the baseline and the new run. Returns a
/// human-readable line, or `None` when either side lacks shares (the
/// baseline predates x-ray, or the row is a microbench).
fn blame_line(new: &ScenarioBench, base: &ScenarioBench) -> Option<String> {
    if new.xray_shares.len() != 6 || base.xray_shares.len() != 6 {
        return None;
    }
    let (idx, delta) = new
        .xray_shares
        .iter()
        .zip(base.xray_shares.iter())
        .map(|(n, b)| n - b)
        .enumerate()
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))?;
    let comp = wasp_xray::Component::ALL[idx].label();
    Some(format!(
        "  blame: {comp} share moved most, {:.1}% → {:.1}% ({:+.1} pp)",
        base.xray_shares[idx] * 100.0,
        new.xray_shares[idx] * 100.0,
        delta * 100.0
    ))
}

/// Applies the regression gate: every baseline scenario present in the
/// new report must keep ≥ `(100 - gate_pct)%` of its normalized
/// throughput. Returns the failure descriptions; a failing scenario
/// with attribution data on both sides also gets a blame line naming
/// the delay component whose share moved most since the baseline.
fn gate_failures(new: &BenchReport, base: &BenchReport, gate_pct: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for b in &base.scenarios {
        let Some(n) = new.scenarios.iter().find(|s| s.name == b.name) else {
            failures.push(format!("scenario {} missing from new report", b.name));
            continue;
        };
        if b.ticks_per_mop <= 0.0 {
            continue;
        }
        let change_pct = (n.ticks_per_mop / b.ticks_per_mop - 1.0) * 100.0;
        if change_pct < -gate_pct {
            let mut msg = format!(
                "{}: normalized throughput {:.3} → {:.3} ticks/Mop ({:+.1}%, gate -{gate_pct}%)",
                b.name, b.ticks_per_mop, n.ticks_per_mop, change_pct
            );
            if let Some(blame) = blame_line(n, b) {
                msg.push('\n');
                msg.push_str(&blame);
            }
            failures.push(msg);
        }
    }
    failures
}

/// Times the partition-pipelined migration scheduler on a 16-site ×
/// 64-partition instance (8 Zipf-skewed sources, 8 destinations) and
/// folds it into a gated report row: `ticks` counts scheduler
/// invocations and `ticks_per_mop` is the calibration-normalized rate,
/// so the regression gate covers the new `wasp-state` subsystem's
/// hot path alongside the scenario runs. Fields that only make sense
/// for engine runs (delays, recoveries) stay zero.
fn bench_partition_scheduler() -> ScenarioBench {
    use wasp_netsim::site::SiteId;
    use wasp_state::scheduler::pipeline_schedule;
    use wasp_state::{partition_weights, PartitionConfig};

    let cfg = PartitionConfig {
        partitions: 64,
        ..PartitionConfig::default()
    };
    let sources: Vec<(SiteId, Vec<(u32, f64)>)> = (0..8u16)
        .map(|i| {
            let weights = partition_weights(&cfg, i as u64);
            let slices = weights
                .iter()
                .enumerate()
                .map(|(p, &w)| (p as u32, w * 200.0))
                .collect();
            (SiteId(i), slices)
        })
        .collect();
    let dests: Vec<SiteId> = (8..16u16).map(SiteId).collect();
    let seed: Vec<(SiteId, SiteId)> = (0..8u16).map(|i| (SiteId(i), SiteId(8 + i))).collect();
    // Deterministic heterogeneous link rates (MB/s), so the greedy
    // rebalancer has real work to do.
    let rate =
        |a: SiteId, b: SiteId| -> f64 { 2.0 + ((a.0 as u64 * 31 + b.0 as u64 * 17) % 23) as f64 };
    let mops = calibrate();
    let iters = 200u64;
    let t0 = Instant::now();
    let mut acc = 0.0f64;
    for _ in 0..iters {
        let s = pipeline_schedule(&sources, &seed, &dests, &rate);
        acc += s.bottleneck_s + s.max_pause_s;
    }
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    assert!(acc.is_finite());
    std::hint::black_box(acc);
    let per_s = iters as f64 / wall_s;
    ScenarioBench {
        name: "partitioned_migration_sched".to_string(),
        controller: "microbench".to_string(),
        wall_s,
        sim_s: 0.0,
        ticks: iters,
        ticks_per_s: per_s,
        sim_speedup: 0.0,
        events_per_s: 0.0,
        ticks_per_mop: per_s / mops.max(1e-9),
        delay_p50_s: 0.0,
        delay_p95_s: 0.0,
        delay_p99_s: 0.0,
        delivered_ratio: 0.0,
        actions: 0,
        recoveries: Vec::new(),
        merged_delay_p50_s: 0.0,
        merged_delay_p95_s: 0.0,
        merged_delay_p99_s: 0.0,
        xray_shares: Vec::new(),
        replay_p95_s: 0.0,
        compaction_mb: 0.0,
    }
}

/// Scenario entry points as plain `fn` pointers so the driver closure
/// that dispatches them is `Sync` (boxed capturing closures are not).
fn run_84_topk(c: &ScenarioConfig) -> ExperimentResult {
    run_section_8_4(QueryKind::TopK, ControllerKind::Wasp, c)
}
fn run_84_advertising(c: &ScenarioConfig) -> ExperimentResult {
    run_section_8_4(QueryKind::Advertising, ControllerKind::Wasp, c)
}
fn run_85_topk(c: &ScenarioConfig) -> ExperimentResult {
    run_section_8_5(ControllerKind::Wasp, c)
}
fn run_86_live(c: &ScenarioConfig) -> ExperimentResult {
    run_section_8_6(ControllerKind::Wasp, c)
}
/// The skewed-state rescue with runtime key-range splitting on: the
/// §5 scenario whose migration pauses the split machinery exists to
/// bound. Folding it into the gated grid keeps both the split hot path
/// and its downstream slice scheduling under the regression gate.
fn run_skewed_split(c: &ScenarioConfig) -> ExperimentResult {
    let r = run_skewed_split_experiment(60.0, c);
    ExperimentResult {
        label: r.label,
        query: "topk (skewed split)".to_string(),
        metrics: r.metrics,
        e2e_selectivity: 1.0,
        xray: r.xray,
        replay_p95_s: None,
        compaction_mb: None,
    }
}
/// The delta-chain scenario: incremental checkpoints accrue a chain,
/// round-count compaction folds it into full-snapshot bursts, and
/// three scripted failures replay whatever chain they find. Gating it
/// keeps the chain bookkeeping, the compaction flights, and the
/// recovery-replay stall machinery on the regression radar, and the
/// report row carries the replay p95 and burst volume.
fn run_compaction(c: &ScenarioConfig) -> ExperimentResult {
    let r = run_compaction_experiment(
        wasp_state::CompactionPolicy::every_n_rounds(COMPACTION_EVERY_N_ROUNDS),
        48.0,
        c,
    );
    ExperimentResult {
        label: r.label,
        query: "topk (delta chain)".to_string(),
        metrics: r.metrics,
        e2e_selectivity: 1.0,
        xray: r.xray,
        replay_p95_s: Some(r.replay_p95_s),
        compaction_mb: Some(r.compaction_mb),
    }
}

type ScenarioFn = fn(&ScenarioConfig) -> ExperimentResult;

/// One (repeat, scenario) cell of the benchmark grid.
#[derive(Debug, Clone, Copy)]
struct WorkUnit {
    round: u32,
    idx: usize,
}

/// What a worker sends back to the driver. Everything here is `Send`
/// plain data — the non-`Send` `MetricsHub` stays inside the worker,
/// which renders any requested text dumps before returning.
struct UnitOutcome {
    unit: WorkUnit,
    timed: TimedRepeat,
    /// This repeat's delivery-delay histogram shard.
    delay_shard: wasp_metrics::LogHistogram,
    /// Full result, kept only for the final round (summary row).
    result: Option<ExperimentResult>,
    /// Prometheus / CSV dumps of the worker's hub (final round only).
    prom: Option<String>,
    csv: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_pr10.json".to_string();
    let mut baseline: Option<String> = None;
    let mut gate_pct = 15.0;
    let mut csv_out: Option<String> = None;
    let mut prom_out: Option<String> = None;
    let mut repeat = 9u32;
    let mut jobs_arg: Option<usize> = None;
    let mut cfg = ScenarioConfig::default();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--repeat" => {
                repeat = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--jobs" => {
                jobs_arg = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--out" => out = it.next().unwrap_or_else(|| usage()),
            "--baseline" => baseline = Some(it.next().unwrap_or_else(|| usage())),
            "--gate" => {
                gate_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--csv" => csv_out = Some(it.next().unwrap_or_else(|| usage())),
            "--prom" => prom_out = Some(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    // `--jobs 0` = one worker per available core; no flag = WASP_JOBS /
    // RAYON_NUM_THREADS, else sequential.
    let jobs = wasp_parallel::resolve_jobs(jobs_arg);
    // Quick mode trades tick resolution for CI speed; the qualitative
    // behavior (adaptations, recoveries) survives the coarser dt, and
    // runs stay long enough (≥ ~50 ms) to time reliably.
    cfg.dt = if quick { 0.5 } else { 0.25 };

    // Warm-up calibration (discarded): first-touch effects land here.
    let _ = calibrate();

    let runs: &[(&str, ScenarioFn)] = &[
        ("section_8_4_topk", run_84_topk),
        ("section_8_4_advertising", run_84_advertising),
        ("section_8_5_topk", run_85_topk),
        ("section_8_6_live", run_86_live),
        ("skewed_split_topk", run_skewed_split),
        ("compaction_topk", run_compaction),
    ];
    // Scenarios are interleaved round-robin across the repeats (run
    // A,B,C,D then A,B,C,D again, …) so a burst of machine noise
    // spreads over every scenario's sample set instead of sinking one
    // scenario's whole median. Under `--jobs > 1` the same grid is
    // fanned across the pool in that submission order; `map_ordered`
    // hands the outcomes back in grid order, so the collection below
    // is identical however the cells were scheduled.
    let rounds = repeat.max(1);
    let units: Vec<WorkUnit> = (0..rounds)
        .flat_map(|round| (0..runs.len()).map(move |idx| WorkUnit { round, idx }))
        .collect();
    eprintln!(
        "running {} scenarios x {} repeats (seed {}, dt {}, jobs {})...",
        runs.len(),
        rounds,
        cfg.seed,
        cfg.dt,
        jobs,
    );
    let (seed, dt) = (cfg.seed, cfg.dt);
    let want_dumps = prom_out.is_some() || csv_out.is_some();
    let outcomes = wasp_parallel::map_ordered(units, jobs, |unit: WorkUnit| {
        // Each cell gets a private config and a private recording hub:
        // nothing mutable is shared between workers, so the simulated
        // results cannot depend on the schedule.
        let c = ScenarioConfig {
            seed,
            dt,
            metrics: MetricsHub::recording(10.0),
            // Attribution stays on while timing: the gated throughput
            // includes the x-ray overhead, so a regression in the
            // ledger path itself cannot hide from the gate.
            xray: Some(XRAY_DEFAULT_WINDOW_S),
            ..Default::default()
        };
        let run = runs[unit.idx].1;
        let mops = calibrate();
        let t0 = Instant::now();
        let r = run(&c);
        let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
        let timed = TimedRepeat {
            mops,
            wall_s,
            ticks: r.metrics.ticks().len() as u64,
        };
        // Conservation invariant, checked on every repeat: the
        // component ledgers must sum to the end-to-end delay.
        if let Some(x) = &r.xray {
            let err = x.conservation_error();
            if err > 1e-6 {
                eprintln!(
                    "CONSERVATION VIOLATION: {} components sum off by {err:.3e} (> 1e-6)",
                    runs[unit.idx].0
                );
                std::process::exit(1);
            }
        }
        let last_round = unit.round + 1 == rounds;
        UnitOutcome {
            unit,
            timed,
            delay_shard: r.metrics.delay_histogram().clone(),
            prom: (last_round && want_dumps).then(|| c.metrics.render_prometheus()),
            csv: (last_round && want_dumps).then(|| c.metrics.render_csv()),
            result: last_round.then_some(r),
        }
    });

    let mut scenarios = Vec::new();
    let mut calibration_mops = 0.0f64;
    let mut samples: Vec<Vec<TimedRepeat>> = vec![Vec::new(); runs.len()];
    let mut merged: Vec<wasp_metrics::LogHistogram> =
        vec![wasp_metrics::LogHistogram::default(); runs.len()];
    let mut results: Vec<Option<ExperimentResult>> = (0..runs.len()).map(|_| None).collect();
    let mut last_dumps: Option<(Option<String>, Option<String>)> = None;
    for o in outcomes {
        let i = o.unit.idx;
        samples[i].push(o.timed);
        merged[i].merge(&o.delay_shard);
        if let Some(r) = o.result {
            results[i] = Some(r);
            last_dumps = Some((o.prom, o.csv));
        }
    }
    for (i, (name, _)) in runs.iter().enumerate() {
        let result = results[i].take().expect("every scenario ran");
        let (bench, mops) = summarize_scenario(name, &samples[i], &result, &merged[i]);
        calibration_mops = calibration_mops.max(mops);
        eprintln!(
            "{name}: {:.2}s wall, {:.0} ticks/s ({:.0}x realtime), p95 {:.2}s, {} actions",
            bench.wall_s, bench.ticks_per_s, bench.sim_speedup, bench.delay_p95_s, bench.actions
        );
        for r in &bench.recoveries {
            eprintln!(
                "  failure at t={:.0}s recovered in {:.1}s",
                r.at_s, r.recovery_s
            );
        }
        scenarios.push(bench);
    }

    // Gated microbench: the partition-pipelined migration scheduler.
    let sched = bench_partition_scheduler();
    eprintln!(
        "{}: {:.0} schedules/s ({:.3} per Mop)",
        sched.name, sched.ticks_per_s, sched.ticks_per_mop
    );
    scenarios.push(sched);

    // Engine-parallelism sweep over the gated scenario: same seed and
    // dt, engine worker pool at 1/2/8 threads. Beyond the throughput
    // points, this asserts the determinism contract end-to-end: every
    // parallel run must serialize byte-identically to the sequential
    // reference (the differential test suite proves the same property
    // hermetically; this repeats it on the release binary).
    let mut thread_sweep = Vec::new();
    let mut reference: Option<String> = None;
    for engine_jobs in [1usize, 2, 8] {
        let c = ScenarioConfig {
            seed,
            dt,
            jobs: engine_jobs,
            metrics: MetricsHub::recording(10.0),
            xray: Some(XRAY_DEFAULT_WINDOW_S),
            ..Default::default()
        };
        let mops = calibrate();
        let t0 = Instant::now();
        let r = run_84_topk(&c);
        let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
        // The digest covers the attribution snapshot too: byte-identity
        // across engine_jobs now proves the x-ray ledgers, not just the
        // delay metrics, are schedule-independent.
        let digest = serde_json::to_string(&(&r.metrics, &r.xray)).expect("serialize metrics");
        let bit_identical = reference.get_or_insert_with(|| digest.clone()) == &digest;
        let ticks_per_mop = (r.metrics.ticks().len() as f64 / wall_s) / mops.max(1e-9);
        eprintln!(
            "thread_sweep engine_jobs={engine_jobs}: {ticks_per_mop:.3} ticks/Mop, \
             bit_identical={bit_identical}"
        );
        thread_sweep.push(ThreadSweepEntry {
            engine_jobs,
            ticks_per_mop,
            bit_identical,
        });
    }
    if thread_sweep.iter().any(|e| !e.bit_identical) {
        eprintln!("DETERMINISM VIOLATION: parallel engine run diverged from sequential");
        std::process::exit(1);
    }

    let report = BenchReport {
        version: 3,
        quick,
        seed: cfg.seed,
        dt: cfg.dt,
        calibration_mops,
        jobs,
        scenarios,
        thread_sweep,
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    if let Err(err) = std::fs::write(&out, json + "\n") {
        eprintln!("error: cannot write report to {out}: {err}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");

    // Optional metric dumps from the last scenario's final-round hub:
    // the full Prometheus exposition and the long-format CSV time
    // series (rendered inside the worker that owned the hub).
    if let Some((prom, csv)) = last_dumps {
        if let Some(path) = &prom_out {
            let text = prom.expect("prometheus dump rendered");
            if let Err(err) = std::fs::write(path, text) {
                eprintln!("error: cannot write prometheus dump to {path}: {err}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
        if let Some(path) = &csv_out {
            let text = csv.expect("csv dump rendered");
            if let Err(err) = std::fs::write(path, text) {
                eprintln!("error: cannot write csv dump to {path}: {err}");
                std::process::exit(1);
            }
            eprintln!("wrote {path}");
        }
    }

    if let Some(base_path) = baseline {
        let base: BenchReport = match std::fs::read_to_string(&base_path) {
            Ok(text) => match serde_json::from_str(&text) {
                Ok(base) => base,
                Err(err) => {
                    eprintln!(
                        "GATE FAILED: baseline {base_path} does not parse as a bench \
                         report ({err}); regenerate it with wasp-bench --out {base_path}"
                    );
                    std::process::exit(2);
                }
            },
            Err(err) => {
                eprintln!(
                    "GATE FAILED: baseline {base_path} is missing or unreadable ({err}); \
                     create it on the base commit with wasp-bench --quick --out {base_path}"
                );
                std::process::exit(2);
            }
        };
        if base.quick != report.quick {
            eprintln!(
                "warning: baseline quick={} vs run quick={} — comparison may be noisy",
                base.quick, report.quick
            );
        }
        let failures = gate_failures(&report, &base, gate_pct);
        if failures.is_empty() {
            eprintln!("regression gate passed (threshold -{gate_pct}%)");
        } else {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    }
}
