//! Telemetry integration: golden byte-stability of the JSONL export
//! and well-formedness of the Chrome trace, over a real §8.4 run.
//!
//! The determinism contract (DESIGN.md §10): every timestamp is
//! sim-time, so a fixed (scenario, seed, dt) produces a byte-identical
//! event log — no scrubbing or normalization needed before diffing.

use serde::Deserialize;
use wasp_telemetry::LogEntry;
use wasp_workloads::prelude::*;

fn record_8_4(seed: u64) -> Recording {
    let (tel, rec) = Telemetry::recording();
    let cfg = ScenarioConfig {
        seed,
        dt: 1.0,
        telemetry: tel,
        ..ScenarioConfig::default()
    };
    run_section_8_4(QueryKind::Advertising, ControllerKind::Wasp, &cfg);
    rec.recording()
}

#[test]
fn jsonl_log_is_byte_stable_across_runs() {
    let first = to_jsonl(&record_8_4(4));
    let second = to_jsonl(&record_8_4(4));
    assert!(!first.is_empty(), "an instrumented run must record events");
    assert_eq!(
        first, second,
        "same (scenario, seed, dt) must be byte-identical"
    );

    // And the log round-trips: every line parses back to the entry
    // that produced it.
    let reparsed: Vec<LogEntry> = first
        .lines()
        .map(|l| serde_json::from_str(l).expect("every JSONL line parses"))
        .collect();
    assert_eq!(reparsed, record_8_4(4).log);

    // A different seed is a different log (the trace reflects the run,
    // not just the instrumentation points).
    let other = to_jsonl(&record_8_4(5));
    assert_ne!(first, other);
}

// Test-local mirror of the Chrome trace JSON. The vendored serde
// ignores unknown keys and `default`s missing ones, so optional
// per-phase fields (`dur`, `name`) can be plain `Option`s.
#[allow(non_snake_case)]
#[derive(Deserialize)]
struct ChromeTrace {
    displayTimeUnit: String,
    traceEvents: Vec<TraceEvent>,
}

#[derive(Deserialize)]
struct TraceEvent {
    #[serde(default)]
    name: Option<String>,
    ph: String,
    ts: u64,
    tid: u64,
    #[serde(default)]
    dur: Option<u64>,
}

#[test]
fn chrome_trace_is_well_formed() {
    let rec = record_8_4(4);
    let trace: ChromeTrace =
        serde_json::from_str(&to_chrome_trace(&rec)).expect("trace is valid JSON");
    assert_eq!(trace.displayTimeUnit, "ms");
    assert!(!trace.traceEvents.is_empty());

    let mut last_ts = 0u64;
    let mut depth = 0i64;
    let mut max_depth = 0i64;
    for ev in &trace.traceEvents {
        assert!(ev.ts >= last_ts, "timestamps must be monotonic");
        last_ts = ev.ts;
        match ev.ph.as_str() {
            "B" => {
                assert_eq!(ev.tid, 1, "control spans live on the control thread");
                assert!(ev.name.is_some(), "begin events are named");
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            "E" => {
                depth -= 1;
                assert!(depth >= 0, "span end without a begin");
            }
            "X" => {
                assert_eq!(ev.tid, 2, "engine spans live on the engine thread");
                assert!(ev.dur.is_some(), "complete events carry a duration");
            }
            "i" => assert!(ev.name.is_some(), "instants are named"),
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(depth, 0, "every control span must be closed");
    assert!(
        max_depth >= 4,
        "span hierarchy must nest at least 4 deep, got {max_depth}"
    );
    assert!(rec.max_span_depth() >= 4);
}

#[test]
fn report_shows_candidates_and_rejections() {
    let rec = record_8_4(4);
    let report = render_report(&rec, "integration");
    assert!(
        report.contains("monitor-round"),
        "report lists monitor rounds"
    );
    assert!(
        report.contains("considered"),
        "the audit trail names candidate actions"
    );
    assert!(
        report.contains("REJECTED"),
        "the audit trail explains why candidates were rejected"
    );
    assert!(report.contains("max span depth"));
}
