//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures all [--seed N] [--dt SECS] [--out DIR]
//! figures fig2|fig7|table3|fig8|fig10|fig11|fig13|fig14|table2 [...]
//! ```
//!
//! Prints each figure's data as aligned text and, when `--out` is
//! given, writes one JSON file per figure for plotting. `--trace-out`
//! additionally records the §8.4 reference run (WASP, Top-K, the
//! harness seed) with telemetry on and writes a Chrome trace of it.

use std::io::Write as _;
use wasp_bench::ablation::all_ablations;
use wasp_bench::extensions::all_extensions;
use wasp_bench::{
    all_reports, fig10_techniques, fig11_12_live, fig13_migration, fig14_partitioning,
    fig2_bandwidth_variability, fig7_testbed_distributions, fig8_9_adaptation, table2_comparison,
    table3_queries, FigureReport, HarnessConfig,
};
use wasp_telemetry::{to_chrome_trace, Telemetry};
use wasp_workloads::prelude::{run_section_8_4, ControllerKind, QueryKind, ScenarioConfig};

fn usage() -> ! {
    eprintln!(
        "usage: figures <all|fig2|fig7|table3|fig8|fig9|fig10|fig11|fig12|fig13|fig14|table1|table2|ablations|ext> \
         [--seed N] [--dt SECS] [--out DIR] [--gnuplot DIR] [--trace-out FILE]"
    );
    std::process::exit(2);
}

/// Exits with a diagnostic instead of a panic backtrace when an
/// output artifact cannot be produced.
fn die(what: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {what}: {err}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = HarnessConfig::default();
    let mut out_dir: Option<String> = None;
    let mut gnuplot_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    // Progress notices flow through the telemetry sink like every
    // other diagnostic, instead of ad-hoc eprintln!s.
    let progress = Telemetry::stderr();
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--dt" => {
                cfg.dt = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--gnuplot" => gnuplot_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--trace-out" => trace_out = Some(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        usage();
    }

    let mut reports: Vec<FigureReport> = Vec::new();
    for target in &targets {
        let produced: Vec<FigureReport> = match target.as_str() {
            "all" => all_reports(&cfg),
            "fig2" => vec![fig2_bandwidth_variability(&cfg)],
            "fig7" => fig7_testbed_distributions(&cfg),
            "table1" => vec![wasp_bench::table1_notation(&cfg)],
            "table3" => vec![table3_queries(&cfg)],
            // Figs. 8 and 9 come from the same runs.
            "fig8" | "fig9" => fig8_9_adaptation(&cfg),
            "fig10" => fig10_techniques(&cfg),
            // Figs. 11 and 12 come from the same runs.
            "fig11" | "fig12" => fig11_12_live(&cfg),
            "fig13" => fig13_migration(&cfg),
            "fig14" => fig14_partitioning(&cfg),
            "table2" => vec![table2_comparison(&cfg)],
            "ablations" => all_ablations(&cfg),
            "ext" => all_extensions(&cfg),
            _ => usage(),
        };
        reports.extend(produced);
    }

    for report in &reports {
        print!("{}", report.render_text());
        println!();
    }

    if let Some(dir) = gnuplot_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            die("cannot create gnuplot directory", e);
        }
        for report in &reports {
            if report.series.is_empty() {
                continue; // tables have no plottable series
            }
            let path = format!("{dir}/{}.gp", report.id);
            if let Err(e) = std::fs::write(&path, report.render_gnuplot()) {
                die("cannot write gnuplot script", e);
            }
        }
        progress.note(0.0, || format!("wrote gnuplot scripts to {dir}"));
    }
    if let Some(dir) = out_dir {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            die("cannot create output directory", e);
        }
        for report in &reports {
            let path = format!("{dir}/{}.json", report.id);
            let json = match serde_json::to_string_pretty(report) {
                Ok(json) => json,
                Err(e) => die("figure does not serialize", e),
            };
            let mut f = match std::fs::File::create(&path) {
                Ok(f) => f,
                Err(e) => die("cannot create figure file", e),
            };
            if let Err(e) = f.write_all(json.as_bytes()) {
                die("cannot write figure file", e);
            }
        }
        progress.note(0.0, || {
            format!("wrote {} JSON files to {dir}", reports.len())
        });
    }
    if let Some(path) = trace_out {
        let (tel, rec) = Telemetry::recording();
        let scenario_cfg = ScenarioConfig {
            seed: cfg.seed,
            dt: cfg.dt,
            telemetry: tel,
            ..ScenarioConfig::default()
        };
        run_section_8_4(QueryKind::TopK, ControllerKind::Wasp, &scenario_cfg);
        let trace = match to_chrome_trace(&rec.recording()) {
            Ok(trace) => trace,
            Err(e) => die("cannot serialize chrome trace", e),
        };
        if let Err(e) = std::fs::write(&path, trace) {
            die("cannot write chrome trace", e);
        }
        progress.note(0.0, || {
            format!("wrote chrome trace of the section 8.4 reference run to {path}")
        });
    }
}
