//! The WASP performance harness: runs the §8 scenario suite with the
//! metrics hub recording, measures wall-clock engine throughput
//! alongside the SLO metrics, and writes a machine-readable benchmark
//! report (`BENCH_pr3.json` by default).
//!
//! ```text
//! wasp-bench --quick                         # CI-speed run, dt = 1.0
//! wasp-bench --out BENCH_pr3.json            # full run, dt = 0.25
//! wasp-bench --quick --baseline BENCH_pr3.json --gate 15
//! ```
//!
//! Wall-clock numbers are machine-dependent, so the report also
//! carries a *calibration score* (a fixed pure-CPU loop measured at
//! bench time) and a calibration-normalized throughput per scenario.
//! The `--baseline`/`--gate` regression check compares normalized
//! throughput, which transfers across machines of different speeds;
//! the gate fails (exit 1) when any scenario regresses by more than
//! `--gate` percent.

use serde::{Deserialize, Serialize};
use std::time::Instant;
use wasp_workloads::prelude::*;

/// One benchmarked scenario run.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScenarioBench {
    /// Scenario id, e.g. `section_8_4_topk`.
    name: String,
    /// Controller label.
    controller: String,
    /// Wall-clock seconds for the whole run (engine + controller).
    wall_s: f64,
    /// Simulated seconds covered.
    sim_s: f64,
    /// Engine ticks executed (one per `dt`).
    ticks: u64,
    /// Engine throughput: ticks per wall-clock second.
    ticks_per_s: f64,
    /// Simulated seconds per wall-clock second.
    sim_speedup: f64,
    /// Source events simulated per wall-clock second.
    events_per_s: f64,
    /// Calibration-normalized throughput: ticks per mega-op of the
    /// calibration loop (machine-independent, the gated quantity).
    ticks_per_mop: f64,
    /// End-to-end delivery-delay quantiles (seconds).
    delay_p50_s: f64,
    delay_p95_s: f64,
    delay_p99_s: f64,
    /// Delivered / (generated × end-to-end selectivity).
    delivered_ratio: f64,
    /// Adaptation actions annotated during the run.
    actions: u64,
    /// `(failure_t_s, recovery_s)` per injected site failure.
    recoveries: Vec<FailureRecovery>,
}

/// Time-to-recover for one injected failure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct FailureRecovery {
    /// When the failure was observed (sim seconds).
    at_s: f64,
    /// Seconds until the delay re-stabilized.
    recovery_s: f64,
}

/// The full benchmark report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchReport {
    /// Report schema version.
    version: u32,
    /// True for `--quick` (dt = 1.0) runs.
    quick: bool,
    /// Testbed seed.
    seed: u64,
    /// Simulation tick used.
    dt: f64,
    /// Calibration score: mega-ops/s of the fixed CPU loop.
    calibration_mops: f64,
    /// Per-scenario results.
    scenarios: Vec<ScenarioBench>,
}

fn usage() -> ! {
    eprintln!(
        "usage: wasp-bench [--quick] [--seed N] [--repeat N] [--out FILE] [--baseline FILE] \
         [--gate PCT] [--csv FILE] [--prom FILE]"
    );
    std::process::exit(2);
}

/// A fixed reference workload timed at bench time; its measured
/// mega-ops/s calibrates wall-clock throughput so the regression gate
/// transfers across machines. The kernel mixes data-dependent memory
/// walks over a multi-MB table with float math so that it slows down
/// under the same cache/memory contention that slows the simulator —
/// a register-only loop would not, and the normalized ratio would
/// drift with neighbor load. Kept short (~10 ms) because one sample
/// is taken right next to *every* scenario repeat: time-adjacent
/// pairing cancels frequency scaling out of the ratio.
fn calibrate() -> f64 {
    const TABLE: usize = 1 << 19; // 512k u64 = 4 MB, larger than L2
    const OPS: u64 = 2_000_000;
    let mut table: Vec<u64> = Vec::with_capacity(TABLE);
    let mut x = 0x9e3779b97f4a7c15u64;
    for _ in 0..TABLE {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        table.push(x);
    }
    let mut acc = 0.0f64;
    let mut idx = 0usize;
    let t0 = Instant::now();
    for _ in 0..OPS {
        let v = table[idx];
        idx = (v as usize) & (TABLE - 1);
        acc += (v as f64).sqrt() * 1e-12;
    }
    let dt = t0.elapsed().as_secs_f64();
    // `acc` must stay observable or the loop folds away.
    assert!(acc.is_finite());
    std::hint::black_box(acc);
    (OPS as f64 / dt) / 1e6
}

/// One timed repeat of a scenario: a calibration sample taken right
/// next to it, and the run's wall time.
#[derive(Debug, Clone, Copy)]
struct TimedRepeat {
    mops: f64,
    wall_s: f64,
    ticks: u64,
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Folds the timed repeats and the last run's metrics into one report
/// row. The gated quantity is the *median* calibration-normalized
/// ratio over the repeats: time-adjacent pairing cancels slow
/// machine-speed drift, and the median is robust to one-off scheduler
/// hiccups in either direction.
fn summarize_scenario(
    name: &str,
    samples: &[TimedRepeat],
    result: &ExperimentResult,
) -> (ScenarioBench, f64) {
    let mut ratios: Vec<f64> = samples
        .iter()
        .map(|s| (s.ticks as f64 / s.wall_s.max(1e-9)) / s.mops.max(1e-9))
        .collect();
    let mut mops_samples: Vec<f64> = samples.iter().map(|s| s.mops).collect();
    let ticks_per_mop = median(&mut ratios);
    let mops_med = median(&mut mops_samples);
    let wall_s = samples.iter().fold(f64::INFINITY, |a, s| a.min(s.wall_s));
    let m = &result.metrics;
    let sim_s = m.ticks().last().map(|r| r.t).unwrap_or(0.0);
    let ticks = m.ticks().len() as u64;
    let ticks_per_s = ticks as f64 / wall_s.max(1e-9);
    let recoveries = recovery_times(m)
        .into_iter()
        .map(|(at_s, recovery_s)| FailureRecovery { at_s, recovery_s })
        .collect();
    let bench = ScenarioBench {
        name: name.to_string(),
        controller: result.label.clone(),
        wall_s,
        sim_s,
        ticks,
        ticks_per_s,
        sim_speedup: sim_s / wall_s.max(1e-9),
        events_per_s: m.total_generated() / wall_s.max(1e-9),
        ticks_per_mop,
        delay_p50_s: m.delay_quantile(0.5).unwrap_or(0.0),
        delay_p95_s: m.delay_quantile(0.95).unwrap_or(0.0),
        delay_p99_s: m.delay_quantile(0.99).unwrap_or(0.0),
        delivered_ratio: m.total_delivered()
            / (m.total_generated() * result.e2e_selectivity).max(1e-9),
        actions: m.actions().len() as u64,
        recoveries,
    };
    (bench, mops_med)
}

/// Applies the regression gate: every baseline scenario present in the
/// new report must keep ≥ `(100 - gate_pct)%` of its normalized
/// throughput. Returns the failure descriptions.
fn gate_failures(new: &BenchReport, base: &BenchReport, gate_pct: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for b in &base.scenarios {
        let Some(n) = new.scenarios.iter().find(|s| s.name == b.name) else {
            failures.push(format!("scenario {} missing from new report", b.name));
            continue;
        };
        if b.ticks_per_mop <= 0.0 {
            continue;
        }
        let change_pct = (n.ticks_per_mop / b.ticks_per_mop - 1.0) * 100.0;
        if change_pct < -gate_pct {
            failures.push(format!(
                "{}: normalized throughput {:.3} → {:.3} ticks/Mop ({:+.1}%, gate -{gate_pct}%)",
                b.name, b.ticks_per_mop, n.ticks_per_mop, change_pct
            ));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out = "BENCH_pr3.json".to_string();
    let mut baseline: Option<String> = None;
    let mut gate_pct = 15.0;
    let mut csv_out: Option<String> = None;
    let mut prom_out: Option<String> = None;
    let mut repeat = 9u32;
    let mut cfg = ScenarioConfig::default();

    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--repeat" => {
                repeat = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--seed" => {
                cfg.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out = it.next().unwrap_or_else(|| usage()),
            "--baseline" => baseline = Some(it.next().unwrap_or_else(|| usage())),
            "--gate" => {
                gate_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--csv" => csv_out = Some(it.next().unwrap_or_else(|| usage())),
            "--prom" => prom_out = Some(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    // Quick mode trades tick resolution for CI speed; the qualitative
    // behavior (adaptations, recoveries) survives the coarser dt, and
    // runs stay long enough (≥ ~50 ms) to time reliably.
    cfg.dt = if quick { 0.5 } else { 0.25 };

    // Warm-up calibration (discarded): first-touch effects land here.
    let _ = calibrate();

    let mut scenarios = Vec::new();
    let mut last_hub: Option<MetricsHub> = None;
    let mut calibration_mops = 0.0f64;

    type ScenarioRun<'a> = (&'a str, Box<dyn Fn(&ScenarioConfig) -> ExperimentResult>);
    let runs: Vec<ScenarioRun> = vec![
        (
            "section_8_4_topk",
            Box::new(|c: &ScenarioConfig| {
                run_section_8_4(QueryKind::TopK, ControllerKind::Wasp, c)
            }),
        ),
        (
            "section_8_4_advertising",
            Box::new(|c: &ScenarioConfig| {
                run_section_8_4(QueryKind::Advertising, ControllerKind::Wasp, c)
            }),
        ),
        (
            "section_8_5_topk",
            Box::new(|c: &ScenarioConfig| run_section_8_5(ControllerKind::Wasp, c)),
        ),
        (
            "section_8_6_live",
            Box::new(|c: &ScenarioConfig| run_section_8_6(ControllerKind::Wasp, c)),
        ),
    ];
    // Scenarios are interleaved round-robin across the repeats (run
    // A,B,C,D then A,B,C,D again, …) so a burst of machine noise
    // spreads over every scenario's sample set instead of sinking one
    // scenario's whole median.
    let mut samples: Vec<Vec<TimedRepeat>> = vec![Vec::new(); runs.len()];
    let mut results: Vec<Option<(ExperimentResult, MetricsHub)>> =
        (0..runs.len()).map(|_| None).collect();
    eprintln!(
        "running {} scenarios x {} repeats (seed {}, dt {})...",
        runs.len(),
        repeat.max(1),
        cfg.seed,
        cfg.dt
    );
    for _ in 0..repeat.max(1) {
        for (i, (_, run)) in runs.iter().enumerate() {
            let mut c = cfg.clone();
            c.metrics = MetricsHub::recording(10.0);
            let mops = calibrate();
            let t0 = Instant::now();
            let r = run(&c);
            let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
            samples[i].push(TimedRepeat {
                mops,
                wall_s,
                ticks: r.metrics.ticks().len() as u64,
            });
            results[i] = Some((r, c.metrics));
        }
    }
    for (i, (name, _)) in runs.iter().enumerate() {
        let (result, hub) = results[i].take().expect("every scenario ran");
        let (bench, mops) = summarize_scenario(name, &samples[i], &result);
        calibration_mops = calibration_mops.max(mops);
        eprintln!(
            "{name}: {:.2}s wall, {:.0} ticks/s ({:.0}x realtime), p95 {:.2}s, {} actions",
            bench.wall_s, bench.ticks_per_s, bench.sim_speedup, bench.delay_p95_s, bench.actions
        );
        for r in &bench.recoveries {
            eprintln!(
                "  failure at t={:.0}s recovered in {:.1}s",
                r.at_s, r.recovery_s
            );
        }
        scenarios.push(bench);
        last_hub = Some(hub);
    }

    let report = BenchReport {
        version: 1,
        quick,
        seed: cfg.seed,
        dt: cfg.dt,
        calibration_mops,
        scenarios,
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, json + "\n").expect("write report");
    eprintln!("wrote {out}");

    // Optional metric dumps from the last scenario's hub: the full
    // Prometheus exposition and the long-format CSV time series.
    if let Some(hub) = &last_hub {
        if let Some(path) = &prom_out {
            std::fs::write(path, hub.render_prometheus()).expect("write prometheus dump");
            eprintln!("wrote {path}");
        }
        if let Some(path) = &csv_out {
            std::fs::write(path, hub.render_csv()).expect("write csv dump");
            eprintln!("wrote {path}");
        }
    }

    if let Some(base_path) = baseline {
        let base: BenchReport = match std::fs::read_to_string(&base_path) {
            Ok(text) => serde_json::from_str(&text).expect("parse baseline report"),
            Err(err) => {
                eprintln!("cannot read baseline {base_path}: {err}");
                std::process::exit(2);
            }
        };
        if base.quick != report.quick {
            eprintln!(
                "warning: baseline quick={} vs run quick={} — comparison may be noisy",
                base.quick, report.quick
            );
        }
        let failures = gate_failures(&report, &base, gate_pct);
        if failures.is_empty() {
            eprintln!("regression gate passed (threshold -{gate_pct}%)");
        } else {
            for f in &failures {
                eprintln!("REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    }
}
