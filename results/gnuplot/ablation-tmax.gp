# ablation-tmax — Migration-time threshold t_max at 256 MB state (§6.2)
# t_max    5: transition  14.0 s + stabilize   7.8 s =  21.8 s, p95   3.4 s
# t_max   10: transition  14.0 s + stabilize   7.8 s =  21.8 s, p95   3.4 s
# t_max   30: transition  11.0 s + stabilize  40.5 s =  51.5 s, p95   5.6 s
# t_max  inf: transition  11.0 s + stabilize  40.5 s =  51.5 s, p95   5.6 s
set title "Migration-time threshold t_max at 256 MB state (§6.2)"
set key outside
set grid
set xlabel "t_max (s)"
set ylabel "total overhead (s)"
$data0 << EOD
5 21.75
10 21.75
30 51.5
1000 51.5
EOD
plot $data0 using 1:2 with linespoints title "total-overhead"
pause -1 "press enter"
