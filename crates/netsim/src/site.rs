//! Sites (edge clusters and data centers) and their compute slots.
//!
//! WASP abstracts computational resources at each location as
//! *computing slots*, each able to host exactly one task (§7 of the
//! paper: "Homogeneous compute power across slots"). Sites only differ
//! in how many slots they offer and how they are connected.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a site (edge cluster or data center) in a topology.
///
/// Site ids index the topology's latency/bandwidth matrices and are
/// assigned densely from zero by [`TopologyBuilder`].
///
/// [`TopologyBuilder`]: crate::topology::TopologyBuilder
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SiteId(pub u16);

impl SiteId {
    /// The matrix index of this site.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site-{}", self.0)
    }
}

impl From<u16> for SiteId {
    fn from(v: u16) -> Self {
        SiteId(v)
    }
}

/// The class of a site, which determines its typical resources.
///
/// The paper's testbed (§8.2) uses 8 edge nodes with 2–4 slots each and
/// 8 data-center nodes with 8 slots each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteKind {
    /// A small edge cluster connected over the public Internet.
    Edge,
    /// A well-provisioned cloud data center.
    DataCenter,
}

impl fmt::Display for SiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteKind::Edge => write!(f, "edge"),
            SiteKind::DataCenter => write!(f, "data-center"),
        }
    }
}

/// A site in the wide-area deployment.
///
/// # Examples
///
/// ```
/// use wasp_netsim::site::{Site, SiteKind};
///
/// let s = Site::new("oregon", SiteKind::DataCenter, 8);
/// assert_eq!(s.slots(), 8);
/// assert_eq!(s.kind(), SiteKind::DataCenter);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Site {
    name: String,
    kind: SiteKind,
    slots: u32,
}

impl Site {
    /// Creates a site with the given name, kind and number of compute
    /// slots.
    pub fn new(name: impl Into<String>, kind: SiteKind, slots: u32) -> Site {
        Site {
            name: name.into(),
            kind,
            slots,
        }
    }

    /// Human-readable site name (e.g. `"oregon"` or `"edge-3"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether this is an edge cluster or a data center.
    pub fn kind(&self) -> SiteKind {
        self.kind
    }

    /// Total number of computing slots provided by this site's Task
    /// Manager.
    pub fn slots(&self) -> u32 {
        self.slots
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {} slots)", self.name, self.kind, self.slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_id_roundtrip() {
        let id: SiteId = 5u16.into();
        assert_eq!(id.index(), 5);
        assert_eq!(format!("{id}"), "site-5");
    }

    #[test]
    fn site_accessors() {
        let s = Site::new("edge-0", SiteKind::Edge, 3);
        assert_eq!(s.name(), "edge-0");
        assert_eq!(s.kind(), SiteKind::Edge);
        assert_eq!(s.slots(), 3);
        assert!(format!("{s}").contains("edge-0"));
    }

    #[test]
    fn site_ids_order_by_index() {
        assert!(SiteId(1) < SiteId(2));
        assert_eq!(SiteId(3), SiteId(3));
    }
}
