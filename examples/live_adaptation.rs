//! The §8.6 live environment: random bandwidth/workload variation plus
//! a full resource failure, comparing No Adapt, Degrade, and WASP —
//! and, as a bonus, the §4.3 join-order re-planning scenario (Fig. 5).
//!
//! ```text
//! cargo run --release --example live_adaptation
//! ```

use wasp_core::prelude::*;
use wasp_netsim::prelude::*;
use wasp_streamsim::prelude::*;
use wasp_workloads::prelude::*;

fn main() {
    // --- Part 1: the live Top-K run -----------------------------------
    let cfg = ScenarioConfig::default();
    println!(
        "live environment (bandwidth walk 0.51–2.36×, workload 0.8–2.4×, failure at t=540):\n"
    );
    for ctrl in [
        ControllerKind::NoAdapt,
        ControllerKind::Degrade,
        ControllerKind::Wasp,
    ] {
        let res = run_section_8_6(ctrl, &cfg);
        let m = &res.metrics;
        println!(
            "{:<9} kept {:>5.1}% of events | mean delay {:>7.1}s | p99 {:>7.1}s",
            res.label,
            100.0 * (1.0 - m.dropped_fraction()),
            m.mean_delay().unwrap_or(0.0),
            m.delay_quantile(0.99).unwrap_or(0.0),
        );
        if ctrl == ControllerKind::Wasp {
            println!("  WASP's adaptations:");
            for (t, a) in m.actions() {
                if !a.starts_with("transition") {
                    println!("    t={t:>6.0}s {a}");
                }
            }
        }
    }

    // --- Part 2: join-order re-planning (Fig. 5) -----------------------
    println!("\njoin-order re-planning (the Fig. 5 scenario):");
    let mut b = TopologyBuilder::new();
    let sites: Vec<SiteId> = (0..4)
        .map(|i| b.add_site(format!("s{i}"), SiteKind::DataCenter, 8))
        .collect();
    let sink = b.add_site("sink", SiteKind::DataCenter, 8);
    b.set_all_links(Mbps(60.0), Millis(20.0));
    let mut net = Network::new(b.build().expect("valid topology"));
    // Stream C's path to the sink collapses at t = 200.
    net.set_pair_factor(sites[2], sink, FactorSeries::steps(1.0, &[(200.0, 0.02)]));

    let query = JoinQuery::fig5([sites[0], sites[1], sites[2], sites[3]], sink, 0.5);
    let (plan, physical) = query.plan_from_tree(&query.default_tree());
    println!(
        "  initial plan: {}",
        query.default_tree().render(&query_leaves(&query))
    );
    let mut engine = Engine::new(
        net,
        DynamicsScript::none(),
        plan,
        physical,
        EngineConfig::default(),
    )
    .expect("valid deployment");
    // Re-planning-only configuration, to showcase the §4.3 logical
    // plan switch (full WASP would fix this case by re-assignment).
    let mut wasp = WaspController::with_replanner(
        PolicyConfig {
            allow_reassign: false,
            allow_scale: false,
            scale_down: false,
            ..PolicyConfig::default()
        },
        Box::new(JoinOrderReplanner::new(query.clone())),
    );
    run_controlled(&mut engine, &mut wasp, 600.0, 40.0);
    let final_plan = engine.plan().clone();
    let final_physical = engine.physical().clone();
    if let Some(tree) = query.tree_from_plan(&final_plan, &final_physical) {
        println!("  final plan:   {}", tree.render(&query_leaves(&query)));
    }
    let m = engine.metrics();
    for (t, a) in m.actions() {
        if !a.starts_with("transition") {
            println!("  adaptation at t={t:>4.0}: {a}");
        }
    }
    println!(
        "  delivered {:.0} events, mean delay {:.1}s",
        m.total_delivered(),
        m.mean_delay().unwrap_or(0.0)
    );
}

fn query_leaves(q: &JoinQuery) -> Vec<wasp_optimizer::replan::StreamLeaf> {
    q.streams
        .iter()
        .map(|s| wasp_optimizer::replan::StreamLeaf::new(&s.name, s.site, s.rate))
        .collect()
}
