//! Physical plans: how many tasks of each stage run at which site.
//!
//! A logical operator becomes an execution *stage* whose `p` parallel
//! tasks are spread over sites (`p[s]` in the paper's Table 1). The
//! placement granularity is the site, matching WASP's balanced-
//! partitioning assumption (§7): all tasks of a stage at the same site
//! behave identically.

use crate::ids::OpId;
use crate::operator::OperatorKind;
use crate::plan::LogicalPlan;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use wasp_netsim::site::SiteId;
use wasp_netsim::topology::Topology;

/// Tasks-per-site assignment for one stage.
///
/// # Examples
///
/// ```
/// use wasp_streamsim::physical::Placement;
/// use wasp_netsim::site::SiteId;
///
/// let p = Placement::from_pairs([(SiteId(0), 2), (SiteId(3), 1)]);
/// assert_eq!(p.parallelism(), 3);
/// assert_eq!(p.tasks_at(SiteId(0)), 2);
/// assert_eq!(p.tasks_at(SiteId(1)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Placement {
    tasks: BTreeMap<SiteId, u32>,
}

impl Placement {
    /// An empty placement (no tasks anywhere).
    pub fn empty() -> Placement {
        Placement::default()
    }

    /// All tasks at a single site.
    pub fn single(site: SiteId, tasks: u32) -> Placement {
        let mut p = Placement::empty();
        if tasks > 0 {
            p.tasks.insert(site, tasks);
        }
        p
    }

    /// Builds from `(site, tasks)` pairs; zero-task entries are
    /// dropped, duplicate sites accumulate.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (SiteId, u32)>) -> Placement {
        let mut p = Placement::empty();
        for (s, n) in pairs {
            p.add(s, n);
        }
        p
    }

    /// Adds `n` tasks at `site`.
    pub fn add(&mut self, site: SiteId, n: u32) {
        if n > 0 {
            *self.tasks.entry(site).or_insert(0) += n;
        }
    }

    /// Removes up to `n` tasks from `site`, returning how many were
    /// actually removed.
    pub fn remove(&mut self, site: SiteId, n: u32) -> u32 {
        match self.tasks.get_mut(&site) {
            Some(cur) => {
                let removed = n.min(*cur);
                *cur -= removed;
                if *cur == 0 {
                    self.tasks.remove(&site);
                }
                removed
            }
            None => 0,
        }
    }

    /// Total parallelism `p = Σ_s p[s]`.
    pub fn parallelism(&self) -> u32 {
        self.tasks.values().sum()
    }

    /// Number of tasks at `site`.
    pub fn tasks_at(&self, site: SiteId) -> u32 {
        self.tasks.get(&site).copied().unwrap_or(0)
    }

    /// Sites hosting at least one task, ascending.
    pub fn sites(&self) -> Vec<SiteId> {
        self.tasks.keys().copied().collect()
    }

    /// Iterator over `(site, tasks)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SiteId, u32)> + '_ {
        self.tasks.iter().map(|(&s, &n)| (s, n))
    }

    /// Fraction of this stage's tasks at `site` (the paper's
    /// `p[s] / p`). Zero when the placement is empty.
    pub fn share(&self, site: SiteId) -> f64 {
        let p = self.parallelism();
        if p == 0 {
            0.0
        } else {
            self.tasks_at(site) as f64 / p as f64
        }
    }

    /// Sites used by `self` but not by `new` — the tasks that must be
    /// migrated on a re-assignment (the paper's `S − S'`).
    pub fn sites_removed(&self, new: &Placement) -> Vec<SiteId> {
        self.sites()
            .into_iter()
            .filter(|s| new.tasks_at(*s) == 0)
            .collect()
    }

    /// Sites used by `new` but not by `self` (the paper's `S' − S`).
    pub fn sites_added(&self, new: &Placement) -> Vec<SiteId> {
        new.sites()
            .into_iter()
            .filter(|s| self.tasks_at(*s) == 0)
            .collect()
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (s, n)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}:{n}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(SiteId, u32)> for Placement {
    fn from_iter<I: IntoIterator<Item = (SiteId, u32)>>(iter: I) -> Placement {
        Placement::from_pairs(iter)
    }
}

/// Error validating a physical plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalError {
    /// A stage has zero tasks.
    EmptyStage(OpId),
    /// A source/sink stage is not placed at its pinned site.
    PinnedMismatch(OpId),
    /// Aggregate tasks at a site exceed its slots.
    SlotOverflow(SiteId, u32, u32),
    /// The physical plan's stage count differs from the logical plan.
    ShapeMismatch,
}

impl fmt::Display for PhysicalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalError::EmptyStage(id) => write!(f, "stage {id} has no tasks"),
            PhysicalError::PinnedMismatch(id) => {
                write!(f, "stage {id} must run at its pinned site")
            }
            PhysicalError::SlotOverflow(s, used, avail) => {
                write!(f, "site {s} needs {used} slots but offers {avail}")
            }
            PhysicalError::ShapeMismatch => write!(f, "stage count mismatch with logical plan"),
        }
    }
}

impl std::error::Error for PhysicalError {}

/// A physical plan: one [`Placement`] per logical operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    placements: Vec<Placement>,
}

impl PhysicalPlan {
    /// Builds a physical plan from per-stage placements (indexed by
    /// [`OpId`]).
    pub fn new(placements: Vec<Placement>) -> PhysicalPlan {
        PhysicalPlan { placements }
    }

    /// The trivial initial deployment used by the paper's experiments:
    /// every operator at parallelism 1 (`p = 1`, §8.3); sources pinned
    /// at their sites, everything else at `default_site`.
    pub fn initial(plan: &LogicalPlan, default_site: SiteId) -> PhysicalPlan {
        let placements = plan
            .op_ids()
            .map(|id| match plan.op(id).kind() {
                OperatorKind::Source { site, .. } => Placement::single(*site, 1),
                OperatorKind::Sink { site: Some(s), .. } => Placement::single(*s, 1),
                _ => Placement::single(default_site, 1),
            })
            .collect();
        PhysicalPlan { placements }
    }

    /// Placement of a stage.
    pub fn placement(&self, id: OpId) -> &Placement {
        &self.placements[id.index()]
    }

    /// Mutable placement of a stage.
    pub fn placement_mut(&mut self, id: OpId) -> &mut Placement {
        &mut self.placements[id.index()]
    }

    /// Replaces the placement of a stage.
    pub fn set_placement(&mut self, id: OpId, p: Placement) {
        self.placements[id.index()] = p;
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when there are no stages.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Parallelism of a stage.
    pub fn parallelism(&self, id: OpId) -> u32 {
        self.placements[id.index()].parallelism()
    }

    /// Total slots used per site across all stages.
    pub fn slots_used(&self) -> BTreeMap<SiteId, u32> {
        let mut used = BTreeMap::new();
        for p in &self.placements {
            for (s, n) in p.iter() {
                *used.entry(s).or_insert(0) += n;
            }
        }
        used
    }

    /// Total number of tasks across all stages.
    pub fn total_tasks(&self) -> u32 {
        self.placements.iter().map(Placement::parallelism).sum()
    }

    /// Free slots at `site` given the topology.
    pub fn free_slots(&self, topology: &Topology, site: SiteId) -> u32 {
        let used = self.slots_used().get(&site).copied().unwrap_or(0);
        topology.site(site).slots().saturating_sub(used)
    }

    /// Validates the physical plan against its logical plan and the
    /// topology.
    ///
    /// # Errors
    ///
    /// Returns [`PhysicalError`] when a stage is empty, a pinned
    /// source/sink strays from its site, or a site's slots overflow.
    pub fn validate(&self, plan: &LogicalPlan, topology: &Topology) -> Result<(), PhysicalError> {
        if self.placements.len() != plan.len() {
            return Err(PhysicalError::ShapeMismatch);
        }
        for id in plan.op_ids() {
            let placement = self.placement(id);
            if placement.parallelism() == 0 {
                return Err(PhysicalError::EmptyStage(id));
            }
            match plan.op(id).kind() {
                OperatorKind::Source { site, .. } if placement.sites() != vec![*site] => {
                    return Err(PhysicalError::PinnedMismatch(id));
                }
                OperatorKind::Sink { site: Some(s) } if placement.sites() != vec![*s] => {
                    return Err(PhysicalError::PinnedMismatch(id));
                }
                _ => {}
            }
        }
        for (site, used) in self.slots_used() {
            let avail = topology.site(site).slots();
            if used > avail {
                return Err(PhysicalError::SlotOverflow(site, used, avail));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::OperatorSpec;
    use crate::plan::LogicalPlanBuilder;
    use wasp_netsim::site::SiteKind;
    use wasp_netsim::topology::TopologyBuilder;
    use wasp_netsim::units::{Mbps, Millis};

    fn topo3() -> Topology {
        let mut b = TopologyBuilder::new();
        b.add_site("s0", SiteKind::Edge, 2);
        b.add_site("s1", SiteKind::DataCenter, 4);
        b.add_site("s2", SiteKind::DataCenter, 4);
        b.set_all_links(Mbps(100.0), Millis(10.0));
        b.build().unwrap()
    }

    fn plan() -> LogicalPlan {
        let mut b = LogicalPlanBuilder::new("p");
        let s = b.add(OperatorSpec::new(
            "src",
            OperatorKind::Source {
                site: SiteId(0),
                base_rate: 100.0,
                event_bytes: 10.0,
            },
        ));
        let f = b.add(OperatorSpec::new("f", OperatorKind::Filter));
        let k = b.add(OperatorSpec::new("k", OperatorKind::Sink { site: None }));
        b.connect(s, f);
        b.connect(f, k);
        b.build().unwrap()
    }

    #[test]
    fn placement_accounting() {
        let mut p = Placement::from_pairs([(SiteId(0), 2), (SiteId(1), 1)]);
        assert_eq!(p.parallelism(), 3);
        assert!((p.share(SiteId(0)) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.remove(SiteId(0), 5), 2);
        assert_eq!(p.parallelism(), 1);
        assert_eq!(p.sites(), vec![SiteId(1)]);
        assert_eq!(p.remove(SiteId(2), 1), 0);
    }

    #[test]
    fn placement_set_difference_matches_paper_example() {
        // §4.1: S = {s1,s2,s3,s4}, S' = {s3,s4,s5,s6} ⇒ migrate
        // {s1,s2} → {s5,s6}.
        let old = Placement::from_pairs((1..=4).map(|i| (SiteId(i), 1)));
        let new = Placement::from_pairs((3..=6).map(|i| (SiteId(i), 1)));
        assert_eq!(old.sites_removed(&new), vec![SiteId(1), SiteId(2)]);
        assert_eq!(old.sites_added(&new), vec![SiteId(5), SiteId(6)]);
    }

    #[test]
    fn initial_deployment_pins_sources() {
        let plan = plan();
        let phys = PhysicalPlan::initial(&plan, SiteId(1));
        assert_eq!(phys.placement(OpId(0)).sites(), vec![SiteId(0)]);
        assert_eq!(phys.placement(OpId(1)).sites(), vec![SiteId(1)]);
        assert_eq!(phys.total_tasks(), 3);
        phys.validate(&plan, &topo3()).unwrap();
    }

    #[test]
    fn validate_catches_slot_overflow() {
        let plan = plan();
        let mut phys = PhysicalPlan::initial(&plan, SiteId(1));
        phys.set_placement(OpId(1), Placement::single(SiteId(0), 5));
        let err = phys.validate(&plan, &topo3()).unwrap_err();
        // 5 filter tasks + the source's task at site 0, which has 2 slots.
        assert!(matches!(err, PhysicalError::SlotOverflow(s, 6, 2) if s == SiteId(0)));
    }

    #[test]
    fn validate_catches_unpinned_source() {
        let plan = plan();
        let mut phys = PhysicalPlan::initial(&plan, SiteId(1));
        phys.set_placement(OpId(0), Placement::single(SiteId(2), 1));
        assert_eq!(
            phys.validate(&plan, &topo3()).unwrap_err(),
            PhysicalError::PinnedMismatch(OpId(0))
        );
    }

    #[test]
    fn validate_catches_empty_stage() {
        let plan = plan();
        let mut phys = PhysicalPlan::initial(&plan, SiteId(1));
        phys.set_placement(OpId(1), Placement::empty());
        assert_eq!(
            phys.validate(&plan, &topo3()).unwrap_err(),
            PhysicalError::EmptyStage(OpId(1))
        );
    }

    #[test]
    fn free_slots_subtracts_usage() {
        let plan = plan();
        let phys = PhysicalPlan::initial(&plan, SiteId(1));
        let topo = topo3();
        assert_eq!(phys.free_slots(&topo, SiteId(1)), 2); // filter + sink there
        assert_eq!(phys.free_slots(&topo, SiteId(2)), 4);
        assert_eq!(phys.free_slots(&topo, SiteId(0)), 1);
    }
}
