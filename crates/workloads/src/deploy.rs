//! WAN-aware initial deployment (§2.1).
//!
//! Queries are initially deployed one stage at a time in topological
//! order, each stage solving the placement ILP against the stages
//! already placed — the scheduling style of prior wide-area schedulers
//! the paper builds on (Iridium/Clarinet). WASP's contribution is
//! *re*-optimizing this deployment at runtime; the initial deployment
//! itself only needs to be reasonable.

use std::collections::BTreeMap;
use wasp_netsim::network::Network;
use wasp_netsim::site::SiteId;
use wasp_netsim::units::SimTime;
use wasp_optimizer::placement::{PlacementProblem, PlacementRequest};
use wasp_streamsim::operator::OperatorKind;
use wasp_streamsim::physical::{PhysicalPlan, Placement};
use wasp_streamsim::plan::LogicalPlan;

/// Error returned when no feasible initial deployment exists.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployError {
    /// The stage that could not be placed.
    pub op: wasp_streamsim::ids::OpId,
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no feasible placement for stage {}", self.op)
    }
}

impl std::error::Error for DeployError {}

/// Computes a WAN-aware initial physical plan: every operator at
/// parallelism 1 (§8.3), sources/pinned sinks at their sites, interior
/// stages placed by the ILP in topological order using the plan's
/// expected base rates.
///
/// # Errors
///
/// Returns [`DeployError`] when some stage has no feasible site (e.g.
/// all links too small for the expected stream under α).
pub fn initial_deployment(
    plan: &LogicalPlan,
    net: &Network,
    alpha: f64,
) -> Result<PhysicalPlan, DeployError> {
    let topo = net.topology();
    let rates = plan.expected_rates(&[]);
    let mut placements: Vec<Placement> = vec![Placement::empty(); plan.len()];
    let mut used: BTreeMap<SiteId, u32> = BTreeMap::new();

    for &op in plan.topo_order() {
        let spec = plan.op(op);
        let placement = match spec.kind() {
            OperatorKind::Source { site, .. } => Placement::single(*site, 1),
            OperatorKind::Sink { site: Some(s) } => Placement::single(*s, 1),
            _ => {
                // Expected inbound Mbps per upstream site, given the
                // upstream placements chosen so far.
                let mut upstream: Vec<(SiteId, f64)> = Vec::new();
                for &u in plan.upstream(op) {
                    let mbps = rates[u.index()].1 * plan.out_bytes(u) * 8.0 / 1e6;
                    let up_placement = &placements[u.index()];
                    for (site, _) in up_placement.iter() {
                        let share = up_placement.share(site);
                        match upstream.iter_mut().find(|(s, _)| *s == site) {
                            Some((_, r)) => *r += mbps * share,
                            None => upstream.push((site, mbps * share)),
                        }
                    }
                }
                // Downstream stages are not placed yet (one-stage-at-
                // a-time): only pinned sinks inform the cost.
                let mut downstream: Vec<(SiteId, f64)> = Vec::new();
                for &d in plan.downstream(op) {
                    if let OperatorKind::Sink { site: Some(s) } = plan.op(d).kind() {
                        let mbps = rates[op.index()].1 * plan.out_bytes(op) * 8.0 / 1e6;
                        downstream.push((*s, mbps));
                    }
                }
                let mut available: BTreeMap<SiteId, u32> = BTreeMap::new();
                for site in topo.site_ids() {
                    let free = topo
                        .site(site)
                        .slots()
                        .saturating_sub(used.get(&site).copied().unwrap_or(0));
                    if free > 0 {
                        available.insert(site, free);
                    }
                }
                let req = PlacementRequest {
                    parallelism: 1,
                    upstream,
                    downstream,
                    available_slots: available,
                    alpha,
                    reserved_mbps: std::collections::BTreeMap::new(),
                };
                let problem = PlacementProblem::build(&req, net, SimTime::ZERO);
                let (placement, _) = problem.solve().ok_or(DeployError { op })?;
                placement
            }
        };
        for (site, n) in placement.iter() {
            *used.entry(site).or_insert(0) += n;
        }
        placements[op.index()] = placement;
    }
    Ok(PhysicalPlan::new(placements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasp_netsim::prelude::*;
    use wasp_streamsim::operator::OperatorSpec;
    use wasp_streamsim::plan::LogicalPlanBuilder;

    fn simple_plan(src_site: SiteId, sink_site: SiteId, rate: f64, bytes: f64) -> LogicalPlan {
        let mut b = LogicalPlanBuilder::new("p");
        let s = b.add(OperatorSpec::new(
            "src",
            OperatorKind::Source {
                site: src_site,
                base_rate: rate,
                event_bytes: bytes,
            },
        ));
        let f = b.add(OperatorSpec::new("f", OperatorKind::Filter).with_selectivity(0.2));
        let k = b.add(OperatorSpec::new(
            "sink",
            OperatorKind::Sink {
                site: Some(sink_site),
            },
        ));
        b.connect(s, f);
        b.connect(f, k);
        b.build().unwrap()
    }

    #[test]
    fn deploys_on_the_paper_testbed() {
        let tb = Testbed::paper(3);
        let net = tb.static_network();
        let plan = simple_plan(tb.edges()[0], tb.data_centers()[0], 5_000.0, 16.0);
        let phys = initial_deployment(&plan, &net, 0.8).unwrap();
        phys.validate(&plan, net.topology()).unwrap();
        // Everything at parallelism 1.
        for op in plan.op_ids() {
            assert_eq!(phys.parallelism(op), 1);
        }
    }

    #[test]
    fn respects_bandwidth_feasibility() {
        // A stream too big for every inter-site link can only be
        // consumed at the source's own site.
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a", SiteKind::Edge, 4);
        let c = b.add_site("c", SiteKind::DataCenter, 8);
        b.set_all_links(Mbps(2.0), Millis(10.0));
        let net = Network::new(b.build().unwrap());
        // 5000 ev/s × 100 B × 8 = 4 Mbps ≫ α·2 Mbps links, but the
        // filtered 0.8 Mbps output fits.
        let plan = simple_plan(a, c, 5_000.0, 100.0);
        let phys = initial_deployment(&plan, &net, 0.8).unwrap();
        // The filter must land at the source site; only its σ=0.2
        // output (0.8 Mbps) crosses the WAN.
        assert_eq!(
            phys.placement(wasp_streamsim::ids::OpId(1)).sites(),
            vec![a]
        );
    }

    #[test]
    fn error_when_truly_infeasible() {
        // Source site has 1 slot (taken by the source itself) and
        // zero-bandwidth links: the filter cannot go anywhere.
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a", SiteKind::Edge, 1);
        let c = b.add_site("c", SiteKind::DataCenter, 8);
        let _ = c;
        let net = Network::new(b.build().unwrap());
        let plan = simple_plan(a, c, 5_000.0, 100.0);
        let err = initial_deployment(&plan, &net, 0.8).unwrap_err();
        assert_eq!(err.op, wasp_streamsim::ids::OpId(1));
    }
}
