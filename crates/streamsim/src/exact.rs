//! Record-at-a-time reference executor.
//!
//! The fluid engine ([`crate::engine`]) models rates and delays; this
//! module executes operator *semantics* on individual records. It
//! exists to validate the semantic claims the adaptation layer relies
//! on — above all that the alternative join orders explored by query
//! re-planning (§4.3) produce identical results, and that windowed
//! aggregation/top-k semantics match their fluid counterparts'
//! selectivity model.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A concrete stream record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Event time (seconds).
    pub time: f64,
    /// Partitioning / join key.
    pub key: u64,
    /// Numeric payload (e.g. a count or measurement).
    pub value: f64,
}

impl Event {
    /// Creates an event.
    pub fn new(time: f64, key: u64, value: f64) -> Event {
        Event { time, key, value }
    }
}

/// Index of the tumbling window containing `time`.
///
/// # Panics
///
/// Panics if `window_s` is not positive.
pub fn window_index(time: f64, window_s: f64) -> i64 {
    assert!(window_s > 0.0, "window length must be positive");
    (time / window_s).floor() as i64
}

/// Groups events into tumbling windows: `(window index, events)`,
/// ordered by window index.
pub fn tumbling_windows(events: &[Event], window_s: f64) -> Vec<(i64, Vec<Event>)> {
    let mut map: BTreeMap<i64, Vec<Event>> = BTreeMap::new();
    for &e in events {
        map.entry(window_index(e.time, window_s))
            .or_default()
            .push(e);
    }
    map.into_iter().collect()
}

/// Stateless filter.
pub fn filter(events: &[Event], pred: impl Fn(&Event) -> bool) -> Vec<Event> {
    events.iter().copied().filter(|e| pred(e)).collect()
}

/// Merges streams (stateless union), preserving event-time order.
pub fn union(streams: &[Vec<Event>]) -> Vec<Event> {
    let mut out: Vec<Event> = streams.iter().flatten().copied().collect();
    out.sort_by(|a, b| {
        a.time
            .partial_cmp(&b.time)
            .expect("event times are finite")
            .then(a.key.cmp(&b.key))
    });
    out
}

/// Per-key tumbling-window aggregation: one output event per
/// `(window, key)` with the values combined by `agg` and the timestamp
/// of the *latest* constituent event — exactly the event-time rule the
/// paper uses for its delay metric (§8.3).
pub fn window_aggregate(
    events: &[Event],
    window_s: f64,
    agg: impl Fn(&[f64]) -> f64,
) -> Vec<Event> {
    let mut out = Vec::new();
    for (_, group) in tumbling_windows(events, window_s) {
        let mut by_key: BTreeMap<u64, (f64, Vec<f64>)> = BTreeMap::new();
        for e in group {
            let entry = by_key
                .entry(e.key)
                .or_insert((f64::NEG_INFINITY, Vec::new()));
            entry.0 = entry.0.max(e.time);
            entry.1.push(e.value);
        }
        for (key, (time, values)) in by_key {
            out.push(Event::new(time, key, agg(&values)));
        }
    }
    out
}

/// Windowed equi-join of two streams: within each tumbling window,
/// matching keys produce the cross product; each joined event carries
/// the *max* constituent time and the *sum* of values. With these
/// combiners the n-way join is associative and commutative, which is
/// what lets the Query Planner reorder joins freely (§4.3).
pub fn hash_join(left: &[Event], right: &[Event], window_s: f64) -> Vec<Event> {
    let mut out = Vec::new();
    let lw = tumbling_windows(left, window_s);
    let rw: BTreeMap<i64, Vec<Event>> = tumbling_windows(right, window_s).into_iter().collect();
    for (w, lgroup) in lw {
        let Some(rgroup) = rw.get(&w) else { continue };
        let mut rindex: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
        for e in rgroup {
            rindex.entry(e.key).or_default().push(e);
        }
        for l in &lgroup {
            if let Some(matches) = rindex.get(&l.key) {
                for r in matches {
                    out.push(Event::new(l.time.max(r.time), l.key, l.value + r.value));
                }
            }
        }
    }
    canonicalize(&mut out);
    out
}

/// N-way windowed equi-join evaluated left-to-right (the reference
/// answer all join orders must agree with).
///
/// # Panics
///
/// Panics when fewer than two streams are supplied.
pub fn multi_hash_join(streams: &[Vec<Event>], window_s: f64) -> Vec<Event> {
    assert!(streams.len() >= 2, "need at least two streams to join");
    let mut acc = streams[0].clone();
    for s in &streams[1..] {
        acc = hash_join(&acc, s, window_s);
    }
    canonicalize(&mut acc);
    acc
}

/// Top-k values per key over each tumbling window: counts events per
/// `(window, key, value-bucket)` and keeps the `k` most frequent
/// buckets per key (the Top-K Popular Topics query of Table 3, where
/// the value identifies a topic and the key a country).
pub fn top_k(events: &[Event], window_s: f64, k: usize) -> Vec<Event> {
    let mut out = Vec::new();
    for (_, group) in tumbling_windows(events, window_s) {
        // (key, topic) -> (count, latest time)
        let mut counts: BTreeMap<(u64, u64), (u64, f64)> = BTreeMap::new();
        for e in &group {
            let entry = counts
                .entry((e.key, e.value as u64))
                .or_insert((0, f64::NEG_INFINITY));
            entry.0 += 1;
            entry.1 = entry.1.max(e.time);
        }
        let mut per_key: BTreeMap<u64, Vec<(u64, u64, f64)>> = BTreeMap::new();
        for ((key, topic), (count, time)) in counts {
            per_key.entry(key).or_default().push((count, topic, time));
        }
        for (key, mut entries) in per_key {
            entries.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            for &(count, _topic, time) in entries.iter().take(k) {
                out.push(Event::new(time, key, count as f64));
            }
        }
    }
    out
}

/// Sorts a result multiset into canonical order so plans can be
/// compared with `assert_eq!`.
pub fn canonicalize(events: &mut [Event]) {
    events.sort_by(|a, b| {
        a.key
            .cmp(&b.key)
            .then(a.time.partial_cmp(&b.time).expect("finite times"))
            .then(a.value.partial_cmp(&b.value).expect("finite values"))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn stream(seed: u64, n: usize, keys: u64, horizon: f64) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Event::new(
                    rng.gen_range(0.0..horizon),
                    rng.gen_range(0..keys),
                    rng.gen_range(0..5) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn window_index_boundaries() {
        assert_eq!(window_index(0.0, 10.0), 0);
        assert_eq!(window_index(9.999, 10.0), 0);
        assert_eq!(window_index(10.0, 10.0), 1);
    }

    #[test]
    fn filter_and_union() {
        let a = vec![Event::new(1.0, 1, 1.0), Event::new(2.0, 2, 2.0)];
        let b = vec![Event::new(1.5, 3, 3.0)];
        let f = filter(&a, |e| e.key == 1);
        assert_eq!(f.len(), 1);
        let u = union(&[a, b]);
        assert_eq!(u.len(), 3);
        assert!(u.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn aggregate_takes_latest_event_time() {
        let events = vec![
            Event::new(1.0, 7, 10.0),
            Event::new(8.0, 7, 20.0),
            Event::new(12.0, 7, 5.0),
        ];
        let out = window_aggregate(&events, 10.0, |vs| vs.iter().sum());
        assert_eq!(out.len(), 2);
        // First window: events at t=1 and t=8 → timestamp 8, sum 30.
        assert_eq!(out[0], Event::new(8.0, 7, 30.0));
        assert_eq!(out[1], Event::new(12.0, 7, 5.0));
    }

    #[test]
    fn join_is_commutative() {
        let a = stream(1, 200, 10, 30.0);
        let b = stream(2, 200, 10, 30.0);
        let ab = hash_join(&a, &b, 10.0);
        let ba = hash_join(&b, &a, 10.0);
        assert_eq!(ab, ba);
        assert!(!ab.is_empty());
    }

    #[test]
    fn join_is_associative() {
        let a = stream(3, 100, 5, 20.0);
        let b = stream(4, 100, 5, 20.0);
        let c = stream(5, 100, 5, 20.0);
        let left = hash_join(&hash_join(&a, &b, 10.0), &c, 10.0);
        let right = hash_join(&a, &hash_join(&b, &c, 10.0), 10.0);
        assert_eq!(left, right);
    }

    #[test]
    fn replanning_preserves_results_for_4_way_join() {
        // The §4.3 example: Plan 1 = (A ⋈ B) ⋈ (C ⋈ D),
        // Plan 2 = A ⋈ (B ⋈ (C ⋈ D)) — must emit the same results.
        let streams: Vec<Vec<Event>> = (0..4).map(|i| stream(10 + i, 80, 4, 20.0)).collect();
        let w = 10.0;
        let plan1 = hash_join(
            &hash_join(&streams[0], &streams[1], w),
            &hash_join(&streams[2], &streams[3], w),
            w,
        );
        let plan2 = multi_hash_join(&streams, w);
        assert_eq!(plan1, plan2);
        assert!(!plan1.is_empty());
    }

    #[test]
    fn join_respects_window_boundaries() {
        let a = vec![Event::new(1.0, 1, 1.0)];
        let b = vec![Event::new(11.0, 1, 1.0)];
        // Same key, different 10 s windows → no match.
        assert!(hash_join(&a, &b, 10.0).is_empty());
        // One big window → match.
        assert_eq!(hash_join(&a, &b, 20.0).len(), 1);
    }

    #[test]
    fn top_k_keeps_most_frequent() {
        let mut events = Vec::new();
        // topic 1 × 5, topic 2 × 3, topic 3 × 1 (key 0, window 0).
        for i in 0..5 {
            events.push(Event::new(i as f64 * 0.1, 0, 1.0));
        }
        for i in 0..3 {
            events.push(Event::new(i as f64 * 0.1, 0, 2.0));
        }
        events.push(Event::new(0.5, 0, 3.0));
        let out = top_k(&events, 10.0, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value, 5.0);
        assert_eq!(out[1].value, 3.0);
    }

    #[test]
    fn top_k_selectivity_matches_fluid_model() {
        // With many events per (window,key) the fluid σ of top-k is
        // k·keys·windows / events; check the exact executor agrees.
        let events = stream(42, 20_000, 8, 100.0);
        let k = 3;
        let out = top_k(&events, 10.0, k);
        let expected = (k * 8 * 10) as f64;
        assert!((out.len() as f64 - expected).abs() / expected < 0.05);
    }

    #[test]
    fn aggregate_selectivity_matches_fluid_model() {
        // σ of a keyed 10 s window over 8 keys: 8 events per window.
        let events = stream(7, 20_000, 8, 100.0);
        let out = window_aggregate(&events, 10.0, |vs| vs.len() as f64);
        assert_eq!(out.len(), 8 * 10);
    }

    #[test]
    fn empty_inputs() {
        assert!(tumbling_windows(&[], 5.0).is_empty());
        assert!(window_aggregate(&[], 5.0, |v| v.len() as f64).is_empty());
        assert!(hash_join(&[], &[Event::new(0.0, 1, 1.0)], 5.0).is_empty());
        assert!(top_k(&[], 5.0, 3).is_empty());
    }
}
