//! Property tests for the ledger algebra backing the conservation
//! invariant: stamping, weighted merging, and rescaling must keep
//! `Σ components == (attributed_until − birth) + net_latency` within
//! 1e-6 relative error under any interleaving.

use proptest::prelude::*;
use wasp_xray::{Component, DelayLedger, XrayRecorder};

const TOL: f64 = 1e-6;

fn comp_strategy() -> impl Strategy<Value = Component> {
    (0usize..6).prop_map(|i| Component::ALL[i])
}

proptest! {
    /// Any sequence of advance/charge stamps conserves: the component
    /// sum tracks local age plus charged net latency exactly.
    #[test]
    fn stamping_conserves(
        birth in 0.0f64..1e4,
        steps in proptest::collection::vec((comp_strategy(), 0.0f64..50.0, proptest::bool::ANY), 1..40),
    ) {
        let mut l = DelayLedger::new(birth);
        let mut now = birth;
        let mut net = 0.0;
        for (c, amount, is_advance) in steps {
            if is_advance {
                now += amount;
                l.advance(c, now);
            } else {
                l.charge(Component::Transit, amount);
                net += amount;
                let _ = c;
            }
        }
        prop_assert!(l.conservation_error(birth, net, now) < TOL);
    }

    /// Count-weighted merge of conserved ledgers is conserved at the
    /// weighted-mean birth/frontier/latency (linearity).
    #[test]
    fn weighted_merge_conserves(
        b1 in 0.0f64..1e3,
        b2 in 0.0f64..1e3,
        age1 in 0.0f64..500.0,
        age2 in 0.0f64..500.0,
        lat1 in 0.0f64..10.0,
        lat2 in 0.0f64..10.0,
        w1 in 1e-3f64..1e3,
        w2 in 1e-3f64..1e3,
        c1 in comp_strategy(),
        c2 in comp_strategy(),
    ) {
        let mut a = DelayLedger::new(b1);
        a.advance(c1, b1 + age1);
        a.charge(Component::Transit, lat1);
        let mut b = DelayLedger::new(b2);
        b.advance(c2, b2 + age2);
        b.charge(Component::Transit, lat2);

        let t = w1 + w2;
        let birth = (b1 * w1 + b2 * w2) / t;
        let lat = (lat1 * w1 + lat2 * w2) / t;
        a.merge_weighted(w1, &b, w2);
        // Merged frontier is the weighted mean; conservation holds at
        // that frontier against weighted-mean birth and latency.
        prop_assert!(a.conservation_error(birth, lat, a.attributed_until) < TOL);
    }

    /// Rescale hits the requested budget and preserves shares.
    #[test]
    fn rescale_hits_budget(
        spans in proptest::collection::vec((comp_strategy(), 0.0f64..100.0), 0..12),
        budget in 0.0f64..1e4,
    ) {
        let mut l = DelayLedger::new(0.0);
        let mut now = 0.0;
        for (c, dt) in &spans {
            now += dt;
            l.advance(*c, now);
        }
        let before = l.components();
        let sum_before = l.sum();
        l.rescale_to(budget, Component::Queue);
        prop_assert!((l.sum() - budget).abs() <= TOL * budget.max(1.0));
        if sum_before > 1e-9 && budget > 0.0 {
            for (after_i, before_i) in l.components().iter().zip(before.iter()) {
                prop_assert!(
                    (after_i * sum_before - before_i * budget).abs()
                        < 1e-6 * sum_before.max(budget)
                );
            }
        }
    }

    /// Recorder delivery view: shard-wise recording + merge agrees
    /// with single-stream recording (same guarantee the delay
    /// histogram gives: bucket contents match exactly; float sums
    /// agree to summation-order rounding), and both conserve. Exact
    /// byte-identity across `--jobs` comes from the engine feeding the
    /// recorder an identical observation sequence at any thread count
    /// and is pinned by the streamsim differential suite.
    #[test]
    fn recorder_merge_matches_single_stream(
        deliveries in proptest::collection::vec(
            (0.0f64..2000.0, 0u32..3, 0.0f64..40.0, 1e-3f64..50.0),
            1..60,
        ),
        split in 0usize..60,
    ) {
        let comps_of = |d: f64| {
            // Arbitrary but conserved split of the delay.
            [d * 0.5, d * 0.2, d * 0.1, d * 0.1, d * 0.05, d * 0.05]
        };
        let mut whole = XrayRecorder::new(300.0);
        let mut sa = XrayRecorder::new(300.0);
        let mut sb = XrayRecorder::new(300.0);
        for (i, (t, sink, delay, weight)) in deliveries.iter().enumerate() {
            whole.observe_delivery(*t, *sink, *delay, comps_of(*delay), *weight);
            let shard = if i < split % deliveries.len().max(1) { &mut sa } else { &mut sb };
            shard.observe_delivery(*t, *sink, *delay, comps_of(*delay), *weight);
        }
        let single = whole.finalize();
        let mut merged = sa.finalize();
        merged.merge(&sb.finalize());
        prop_assert_eq!(single.windows.len(), merged.windows.len());
        let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
        for (sw, mw) in single.windows.iter().zip(merged.windows.iter()) {
            prop_assert_eq!(sw.start_s, mw.start_s);
            prop_assert_eq!(sw.sinks.len(), mw.sinks.len());
            for (ss, ms) in sw.sinks.iter().zip(mw.sinks.iter()) {
                prop_assert_eq!(ss.op, ms.op);
                prop_assert!(close(ss.count, ms.count));
                prop_assert!(close(ss.total.sum(), ms.total.sum()));
                prop_assert!(close(ss.total.count(), ms.total.count()));
                prop_assert_eq!(ss.total.quantile(0.95), ms.total.quantile(0.95));
                for (sh, mh) in ss.comps.iter().zip(ms.comps.iter()) {
                    prop_assert!(close(sh.sum(), mh.sum()));
                    prop_assert_eq!(sh.quantile(0.5), mh.quantile(0.5));
                }
            }
        }
        prop_assert!(single.conservation_error() < TOL);
        prop_assert!(merged.conservation_error() < TOL);
    }
}
