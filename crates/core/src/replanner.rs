//! Query re-planning hooks (§4.3).
//!
//! Re-planning is the one adaptation whose search space is
//! query-specific: only the query knows which alternative logical
//! plans are semantically equivalent. [`QueryReplanner`] is the hook
//! the policy calls; two implementations ship here and a join-order
//! replanner (backed by [`wasp_optimizer::replan`]) ships with the
//! workloads crate.
//!
//! [`GenericReplanner`] keeps the logical plan fixed and jointly
//! re-optimizes the *physical* plan of every stage (coordinate descent
//! over the placement ILP, §4.1, until a fixpoint) — "re-evaluating
//! the execution plan based on the observed workload and resource
//! availability" for queries without reorderable joins.

use crate::estimator::WorkloadEstimate;
use crate::policy::PolicyConfig;
use crate::scaling::partition_transfers;
use std::collections::BTreeMap;
use wasp_netsim::network::Network;
use wasp_netsim::site::SiteId;
use wasp_netsim::units::SimTime;
use wasp_optimizer::placement::{PlacementProblem, PlacementRequest};
use wasp_streamsim::engine::{PlanSwitch, Transfer};
use wasp_streamsim::metrics::QuerySnapshot;
use wasp_streamsim::operator::OperatorKind;
use wasp_streamsim::physical::PhysicalPlan;
use wasp_streamsim::plan::LogicalPlan;

/// Produces an alternative plan for the current situation, or `None`
/// when no better plan exists.
pub trait QueryReplanner: std::fmt::Debug {
    /// Proposes a [`PlanSwitch`] improving on the current deployment.
    #[allow(clippy::too_many_arguments)]
    fn replan(
        &self,
        plan: &LogicalPlan,
        physical: &PhysicalPlan,
        snap: &QuerySnapshot,
        est: &WorkloadEstimate,
        net: &Network,
        t: SimTime,
        cfg: &PolicyConfig,
    ) -> Option<PlanSwitch>;
}

/// A replanner that never proposes anything (disables re-planning).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoReplanner;

impl QueryReplanner for NoReplanner {
    fn replan(
        &self,
        _plan: &LogicalPlan,
        _physical: &PhysicalPlan,
        _snap: &QuerySnapshot,
        _est: &WorkloadEstimate,
        _net: &Network,
        _t: SimTime,
        _cfg: &PolicyConfig,
    ) -> Option<PlanSwitch> {
        None
    }
}

/// Joint physical re-optimization of the whole pipeline with the
/// logical plan unchanged.
#[derive(Debug, Default, Clone, Copy)]
pub struct GenericReplanner {
    /// Coordinate-descent passes over the stages (2 is usually enough
    /// to propagate placement decisions both ways).
    pub passes: u32,
}

impl GenericReplanner {
    /// Creates a replanner with the default two passes.
    pub fn new() -> GenericReplanner {
        GenericReplanner { passes: 2 }
    }
}

impl QueryReplanner for GenericReplanner {
    fn replan(
        &self,
        plan: &LogicalPlan,
        physical: &PhysicalPlan,
        snap: &QuerySnapshot,
        est: &WorkloadEstimate,
        net: &Network,
        t: SimTime,
        cfg: &PolicyConfig,
    ) -> Option<PlanSwitch> {
        let mut new_physical = physical.clone();
        // Track slot usage as we move stages around.
        let mut free: BTreeMap<SiteId, u32> = snap.free_slots.clone();
        let passes = self.passes.max(1);
        for _ in 0..passes {
            for &op in plan.topo_order() {
                let spec = plan.op(op);
                let pinned = matches!(
                    spec.kind(),
                    OperatorKind::Source { .. } | OperatorKind::Sink { site: Some(_) }
                );
                if pinned {
                    continue;
                }
                let current = new_physical.placement(op).clone();
                let p = current.parallelism();
                // Expected streams, but against the *evolving*
                // physical plan rather than the snapshot's.
                let upstream = mbps_by_site_for(plan, &new_physical, est, op, true);
                let downstream = mbps_by_site_for(plan, &new_physical, est, op, false);
                let mut available: BTreeMap<SiteId, u32> = BTreeMap::new();
                for (&site, &f) in &free {
                    let own = current.tasks_at(site);
                    if f + own > 0 {
                        available.insert(site, f + own);
                    }
                }
                let req = PlacementRequest {
                    parallelism: p,
                    upstream,
                    downstream,
                    available_slots: available,
                    alpha: cfg.alpha,
                    reserved_mbps: link_flows(plan, &new_physical, est, Some(op)),
                };
                let problem = PlacementProblem::build(&req, net, t);
                if let Some((placement, _)) = problem.solve() {
                    if placement != current {
                        // Update the free-slot ledger.
                        for (site, n) in current.iter() {
                            *free.entry(site).or_insert(0) += n;
                        }
                        for (site, n) in placement.iter() {
                            let f = free.entry(site).or_insert(0);
                            *f = f.saturating_sub(n);
                        }
                        new_physical.set_placement(op, placement);
                    }
                }
            }
        }
        if new_physical == *physical {
            return None;
        }
        // Global acceptance gate: only propose plans that reduce the
        // whole-pipeline congestion cost by a meaningful margin (the
        // per-stage descent can otherwise trade one link's congestion
        // for another's).
        let before = plan_cost(plan, physical, est, net, t, cfg.alpha);
        let after = plan_cost(plan, &new_physical, est, net, t, cfg.alpha);
        if after >= before * 0.95 {
            return None;
        }
        // State transfers for every stateful stage whose layout
        // changed.
        let mut transfers: Vec<Transfer> = Vec::new();
        if !cfg.skip_state {
            for op in plan.op_ids() {
                let stage = snap.stage(op);
                if !stage.stateful {
                    continue;
                }
                let new_placement = new_physical.placement(op);
                if *new_placement != stage.placement {
                    transfers.extend(partition_transfers(&stage.state_mb, new_placement, net, t));
                }
            }
        }
        // Same logical plan: every operator carries over (common
        // sub-plan trivially satisfied).
        let carry = plan.op_ids().map(|op| (op, op)).collect();
        Some(PlanSwitch {
            plan: plan.clone(),
            physical: new_physical,
            carry,
            transfers,
        })
    }
}

/// Expected WAN flow per directed link implied by a physical plan,
/// excluding the flows into/out of `exclude` (the stage being placed).
/// Used to reserve bandwidth for the rest of the pipeline when solving
/// one stage's ILP.
pub fn link_flows(
    plan: &LogicalPlan,
    physical: &PhysicalPlan,
    est: &WorkloadEstimate,
    exclude: Option<wasp_streamsim::ids::OpId>,
) -> BTreeMap<(SiteId, SiteId), f64> {
    let mut flows: BTreeMap<(SiteId, SiteId), f64> = BTreeMap::new();
    for u in plan.op_ids() {
        let mbps = est.output(u) * plan.out_bytes(u) * 8.0 / 1e6;
        if mbps <= 0.0 {
            continue;
        }
        let up = physical.placement(u);
        for &v in plan.downstream(u) {
            if Some(u) == exclude || Some(v) == exclude {
                continue;
            }
            let vp = physical.placement(v);
            for (su, _) in up.iter() {
                for (sv, _) in vp.iter() {
                    if su != sv {
                        *flows.entry((su, sv)).or_insert(0.0) += mbps * up.share(su) * vp.share(sv);
                    }
                }
            }
        }
    }
    flows
}

/// Whole-plan congestion cost: every WAN link carrying flow `f`
/// contributes `f × latency / (1 − util)` (with a large penalty once
/// `util = f / (α·B)` reaches 1). Lower is better; used to accept or
/// reject a candidate physical plan.
pub fn plan_cost(
    plan: &LogicalPlan,
    physical: &PhysicalPlan,
    est: &WorkloadEstimate,
    net: &Network,
    t: SimTime,
    alpha: f64,
) -> f64 {
    let mut cost = 0.0;
    for ((from, to), flow) in link_flows(plan, physical, est, None) {
        let cap = alpha * net.available(from, to, t).0;
        let latency = net.latency(from, to).secs().max(1e-3);
        if cap <= 0.0 || flow >= cap {
            cost += 1e6 * (flow - cap.max(0.0) + 1.0);
        } else {
            let util = flow / cap;
            cost += flow * latency / (1.0 - util);
        }
    }
    cost
}

/// Expected in/outbound Mbps of `op` per peer site, computed against
/// an explicit physical plan (used while the plan is being rewritten).
fn mbps_by_site_for(
    plan: &LogicalPlan,
    physical: &PhysicalPlan,
    est: &WorkloadEstimate,
    op: wasp_streamsim::ids::OpId,
    inbound: bool,
) -> Vec<(SiteId, f64)> {
    let mut out: Vec<(SiteId, f64)> = Vec::new();
    let peers: &[wasp_streamsim::ids::OpId] = if inbound {
        plan.upstream(op)
    } else {
        plan.downstream(op)
    };
    for &peer in peers {
        let rate_mbps = if inbound {
            est.output(peer) * plan.out_bytes(peer) * 8.0 / 1e6
        } else {
            est.output(op) * plan.out_bytes(op) * 8.0 / 1e6
        };
        let placement = physical.placement(peer);
        for (site, _) in placement.iter() {
            let share = placement.share(site);
            if share > 0.0 {
                match out.iter_mut().find(|(s, _)| *s == site) {
                    Some((_, r)) => *r += rate_mbps * share,
                    None => out.push((site, rate_mbps * share)),
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnose::DiagnosisConfig;
    use crate::test_util::*;
    use wasp_netsim::trace::FactorSeries;
    use wasp_streamsim::prelude::*;

    #[test]
    fn no_replanner_returns_none() {
        let (net, edge, dc) = two_site_world(10.0);
        let plan = linear_plan(edge, 1000.0, 5.0, 0.5);
        let mut eng = engine(net, plan.clone(), dc);
        eng.run(60.0);
        let snap = eng.snapshot();
        let est = crate::estimator::WorkloadEstimate::from_snapshot(&plan, &snap);
        let sw = NoReplanner.replan(
            &plan,
            eng.physical(),
            &snap,
            &est,
            eng.network(),
            eng.now(),
            &PolicyConfig::default(),
        );
        assert!(sw.is_none());
    }

    #[test]
    fn generic_replanner_moves_work_off_a_degraded_path() {
        // Filter sits at dc1; the edge→dc1 link collapses while
        // edge→dc2 stays healthy: the replanner should move the filter
        // (and keep the pipeline consistent).
        let (mut net, edge, dc1, dc2) = three_site_world(10.0);
        net.set_pair_factor(edge, dc1, FactorSeries::constant(0.05));
        let plan = linear_plan(edge, 5000.0, 5.0, 0.5);
        let mut eng = engine(net, plan.clone(), dc1);
        eng.run(120.0);
        let snap = eng.snapshot();
        let est = crate::estimator::WorkloadEstimate::from_snapshot(&plan, &snap);
        // Sanity: the estimator sees the bottleneck.
        let diag = crate::diagnose::diagnose(
            &plan,
            &snap,
            &est,
            &vec![None; plan.len()],
            &DiagnosisConfig::default(),
        );
        assert!(!diag.is_healthy());
        let sw = GenericReplanner::new()
            .replan(
                &plan,
                eng.physical(),
                &snap,
                &est,
                eng.network(),
                eng.now(),
                &PolicyConfig::default(),
            )
            .expect("should find a better physical plan");
        // The filter leaves dc1.
        let filter_sites = sw.physical.placement(OpId(1)).sites();
        assert!(
            !filter_sites.contains(&dc1)
                || filter_sites.contains(&dc2)
                || filter_sites.contains(&edge),
            "filter should avoid the degraded path: {filter_sites:?}"
        );
        assert_eq!(sw.carry.len(), plan.len());
        // Applying the switch keeps the engine running.
        eng.apply(Command::SwitchPlan(Box::new(sw))).unwrap();
        eng.run(60.0);
        assert!(eng.metrics().total_delivered() > 0.0);
    }

    #[test]
    fn generic_replanner_is_a_noop_when_placement_is_optimal() {
        let (net, edge, dc) = two_site_world(100.0);
        let plan = linear_plan(edge, 100.0, 5.0, 0.5);
        // Optimal-ish: filter at the edge (co-located with source),
        // sink at dc.
        let mut physical = PhysicalPlan::initial(&plan, dc);
        physical.set_placement(OpId(1), Placement::single(edge, 1));
        let mut eng = Engine::new(
            net,
            wasp_netsim::dynamics::DynamicsScript::none(),
            plan.clone(),
            physical,
            EngineConfig::default(),
        )
        .unwrap();
        eng.run(60.0);
        let snap = eng.snapshot();
        let est = crate::estimator::WorkloadEstimate::from_snapshot(&plan, &snap);
        let sw = GenericReplanner::new().replan(
            &plan,
            eng.physical(),
            &snap,
            &est,
            eng.network(),
            eng.now(),
            &PolicyConfig::default(),
        );
        if let Some(sw) = sw {
            // If it proposes anything, it must differ from the status
            // quo (the contract of `replan`).
            assert_ne!(sw.physical, *eng.physical());
        }
    }
}
