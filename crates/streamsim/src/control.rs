//! Engine-side state of the lossy control plane.
//!
//! When a scenario opts into `ControlPlaneConfig::Lossy`, the engine
//! owns the "wire": heartbeats flow from every live site towards the
//! controller site, commands flow controller → target site, and acks
//! flow back — all routed through [`ControlTransport`], so every
//! message is subject to link latency, random loss, link blackouts and
//! scheduled control partitions. The controller never reads truth
//! state; it only sees what survives the WAN.
//!
//! All stepping happens in sequential engine code (`Engine::step`
//! calls [`Engine::control_step`] before anything else), so jobs-N
//! runs stay bit-identical and oracle mode — where this state is
//! simply absent — is byte-identical to the pre-control-plane engine.
//!
//! [`Engine::control_step`]: crate::engine::Engine

use std::collections::BTreeSet;

use wasp_controlplane::channel::{CommandAck, CommandEnvelope, HeartbeatArrival};
use wasp_controlplane::config::LossyControlConfig;
use wasp_metrics::{Counter, MetricsHub};
use wasp_netsim::control::ControlTransport;
use wasp_netsim::site::SiteId;

use crate::engine::Command;

/// Hot-path instrument handles for the control plane (present only
/// when a metrics hub is attached).
#[derive(Debug)]
pub(crate) struct ControlMetrics {
    pub(crate) heartbeats_sent: Counter,
    pub(crate) heartbeats_dropped: Counter,
    pub(crate) commands_delivered: Counter,
    pub(crate) commands_dropped: Counter,
    pub(crate) stale_rejections: Counter,
}

impl ControlMetrics {
    pub(crate) fn build(hub: &MetricsHub) -> ControlMetrics {
        ControlMetrics {
            heartbeats_sent: hub.counter(
                "wasp_control_heartbeats_sent_total",
                "Heartbeats emitted by live sites towards the controller",
                &[],
            ),
            heartbeats_dropped: hub.counter(
                "wasp_control_heartbeats_dropped_total",
                "Heartbeats lost to the WAN (loss, blackout, partition)",
                &[],
            ),
            commands_delivered: hub.counter(
                "wasp_control_commands_delivered_total",
                "Control commands that reached the engine",
                &[],
            ),
            commands_dropped: hub.counter(
                "wasp_control_commands_dropped_total",
                "Control commands or acks lost to the WAN",
                &[],
            ),
            stale_rejections: hub.counter(
                "wasp_control_stale_epoch_rejections_total",
                "Commands fenced off for carrying a stale controller epoch",
                &[],
            ),
        }
    }
}

/// One command in flight towards the engine.
#[derive(Debug, Clone)]
pub(crate) struct InFlightCommand {
    /// Tie-break for identical arrival times: submission order.
    pub(crate) seq: u64,
    /// When it reaches the engine.
    pub(crate) arrive_s: f64,
    /// Site the command is addressed to (acks originate here).
    pub(crate) target: SiteId,
    /// The fenced command.
    pub(crate) env: CommandEnvelope<Command>,
}

/// Everything the engine tracks for the lossy control plane.
#[derive(Debug)]
pub(crate) struct ControlPlaneState {
    pub(crate) cfg: LossyControlConfig,
    pub(crate) controller_site: SiteId,
    pub(crate) transport: ControlTransport,
    /// Commands in flight, unordered; delivery sorts by
    /// `(arrive_s, seq)` so a delayed early command can be overtaken.
    pub(crate) inbox: Vec<InFlightCommand>,
    /// Acks in flight back to the controller: `(arrive_s, ack)`.
    pub(crate) acks: Vec<(f64, CommandAck)>,
    /// Heartbeats in flight to the controller: `(arrive_s, hb)`.
    pub(crate) heartbeats: Vec<(f64, HeartbeatArrival)>,
    /// Next scheduled heartbeat emission time.
    pub(crate) next_hb_s: f64,
    /// Monotone per-submission sequence number.
    pub(crate) next_seq: u64,
    /// Ids of commands already applied (idempotent redelivery).
    pub(crate) applied_ids: BTreeSet<u64>,
    /// Fencing epoch: the highest epoch of any accepted command.
    pub(crate) epoch: u64,
    /// Stale-epoch rejections so far (for audits and tests).
    pub(crate) stale_rejections: u64,
    pub(crate) cm: Option<ControlMetrics>,
}

impl ControlPlaneState {
    pub(crate) fn new(
        cfg: LossyControlConfig,
        controller_site: SiteId,
        cm: Option<ControlMetrics>,
    ) -> ControlPlaneState {
        let transport = ControlTransport::new(cfg.loss, cfg.delay_factor, cfg.seed);
        ControlPlaneState {
            cfg,
            controller_site,
            transport,
            inbox: Vec::new(),
            acks: Vec::new(),
            heartbeats: Vec::new(),
            next_hb_s: 0.0,
            next_seq: 0,
            applied_ids: BTreeSet::new(),
            epoch: 0,
            stale_rejections: 0,
            cm,
        }
    }

    /// Remove and return the in-flight commands due at or before `t`,
    /// in `(arrive_s, seq)` order — the order the wire would deliver
    /// them, which is *not* necessarily submission order.
    pub(crate) fn take_due_commands(&mut self, t: f64) -> Vec<InFlightCommand> {
        let mut due: Vec<InFlightCommand> = Vec::new();
        let mut rest: Vec<InFlightCommand> = Vec::new();
        for c in self.inbox.drain(..) {
            if c.arrive_s <= t {
                due.push(c);
            } else {
                rest.push(c);
            }
        }
        self.inbox = rest;
        due.sort_by(|a, b| {
            a.arrive_s
                .partial_cmp(&b.arrive_s)
                .expect("finite arrival times")
                .then(a.seq.cmp(&b.seq))
        });
        due
    }

    /// Remove and return the heartbeats and acks that reached the
    /// controller by `t`, each sorted by arrival time.
    pub(crate) fn take_arrived(&mut self, t: f64) -> (Vec<HeartbeatArrival>, Vec<CommandAck>) {
        let mut hbs: Vec<(f64, HeartbeatArrival)> = Vec::new();
        let mut hb_rest = Vec::new();
        for item in self.heartbeats.drain(..) {
            if item.0 <= t {
                hbs.push(item);
            } else {
                hb_rest.push(item);
            }
        }
        self.heartbeats = hb_rest;
        hbs.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite arrival times")
                .then(a.1.site.cmp(&b.1.site))
        });

        let mut acks: Vec<(f64, CommandAck)> = Vec::new();
        let mut ack_rest = Vec::new();
        for item in self.acks.drain(..) {
            if item.0 <= t {
                acks.push(item);
            } else {
                ack_rest.push(item);
            }
        }
        self.acks = ack_rest;
        acks.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite arrival times")
                .then(a.1.id.cmp(&b.1.id))
        });
        (
            hbs.into_iter().map(|(_, hb)| hb).collect(),
            acks.into_iter().map(|(_, a)| a).collect(),
        )
    }
}
