//! Shared fixtures for wasp-core's unit tests (also reused by the
//! workspace integration tests).

#![allow(missing_docs)]

use wasp_netsim::dynamics::DynamicsScript;
use wasp_netsim::network::Network;
use wasp_netsim::site::{SiteId, SiteKind};
use wasp_netsim::topology::TopologyBuilder;
use wasp_netsim::units::{Mbps, Millis};
use wasp_streamsim::engine::{Engine, EngineConfig};
use wasp_streamsim::operator::{OperatorKind, OperatorSpec};
use wasp_streamsim::physical::PhysicalPlan;
use wasp_streamsim::plan::{LogicalPlan, LogicalPlanBuilder};

/// Two sites — an edge (4 slots) and a DC (8 slots) — joined by a
/// symmetric link of the given bandwidth and 20 ms latency.
pub fn two_site_world(link_mbps: f64) -> (Network, SiteId, SiteId) {
    let mut b = TopologyBuilder::new();
    let edge = b.add_site("edge", SiteKind::Edge, 4);
    let dc = b.add_site("dc", SiteKind::DataCenter, 8);
    b.set_symmetric_link(edge, dc, Mbps(link_mbps), Millis(20.0));
    (Network::new(b.build().unwrap()), edge, dc)
}

/// Three sites: an edge plus two DCs, fully connected.
pub fn three_site_world(link_mbps: f64) -> (Network, SiteId, SiteId, SiteId) {
    let mut b = TopologyBuilder::new();
    let edge = b.add_site("edge", SiteKind::Edge, 4);
    let dc1 = b.add_site("dc1", SiteKind::DataCenter, 8);
    let dc2 = b.add_site("dc2", SiteKind::DataCenter, 8);
    b.set_all_links(Mbps(link_mbps), Millis(20.0));
    b.set_symmetric_link(dc1, dc2, Mbps(200.0), Millis(5.0));
    (Network::new(b.build().unwrap()), edge, dc1, dc2)
}

/// `src(edge) → filter(cost, σ) → sink`. 100-byte events.
pub fn linear_plan(edge: SiteId, rate: f64, filter_cost_us: f64, sigma: f64) -> LogicalPlan {
    let mut p = LogicalPlanBuilder::new("linear");
    let s = p.add(OperatorSpec::new(
        "src",
        OperatorKind::Source {
            site: edge,
            base_rate: rate,
            event_bytes: 100.0,
        },
    ));
    let f = p.add(
        OperatorSpec::new("filter", OperatorKind::Filter)
            .with_selectivity(sigma)
            .with_cost_us(filter_cost_us),
    );
    let k = p.add(OperatorSpec::new("sink", OperatorKind::Sink { site: None }));
    p.connect(s, f);
    p.connect(f, k);
    p.build().unwrap()
}

/// Deploys `plan` with everything non-pinned at `at`, no dynamics.
pub fn engine(net: Network, plan: LogicalPlan, at: SiteId) -> Engine {
    engine_with_script(net, plan, at, DynamicsScript::none())
}

/// Deploys `plan` with everything non-pinned at `at` under a script.
pub fn engine_with_script(
    net: Network,
    plan: LogicalPlan,
    at: SiteId,
    script: DynamicsScript,
) -> Engine {
    let physical = PhysicalPlan::initial(&plan, at);
    Engine::new(net, script, plan, physical, EngineConfig::default()).unwrap()
}
