//! Aggregation of per-cohort ledgers into per-sink per-window
//! breakdowns, flow-time node/edge accumulators, critical paths, and
//! folded-stack export.
//!
//! Two attribution views coexist and are intentionally different:
//!
//! * **Delivery view** ([`XraySink`]): at every sink delivery the
//!   cohort's closed ledger is folded into one `LogHistogram` per
//!   component, weighted by event count. This view is
//!   delay-metric-exact — component sums reproduce the end-to-end
//!   delay histogram's `sum()` within 1e-6 relative error (the
//!   conservation invariant, see [`XrayRun::conservation_error`]).
//! * **Flow view** ([`XrayNode`]/[`XrayEdge`]): seconds·events charged
//!   at the (op, site) where the time was *spent*, regardless of
//!   whether the carrying cohort ever reaches a sink. This is the view
//!   critical paths and folded stacks are built from, because "where
//!   is time accumulating" is a per-operator question.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use wasp_metrics::LogHistogram;

use crate::Component;

/// Accumulates attribution observations during a run and snapshots
/// them into an [`XrayRun`].
///
/// All entry points take the current sim time and bucket into
/// reporting windows of `window_s`; every underlying container is a
/// `BTreeMap`, so iteration (and therefore the snapshot) is
/// deterministic regardless of observation interleaving — the engine
/// additionally guarantees observations arrive in its sequential
/// reduce order, making the snapshot byte-identical at any `--jobs`.
#[derive(Debug, Clone)]
pub struct XrayRecorder {
    window_s: f64,
    ops: BTreeMap<u32, String>,
    sites: BTreeMap<u32, String>,
    windows: BTreeMap<i64, WindowAcc>,
    links: BTreeMap<(u32, u32), LinkAcc>,
    adaptation: Vec<(f64, f64)>,
}

#[derive(Debug, Clone, Default)]
struct WindowAcc {
    sinks: BTreeMap<u32, SinkAcc>,
    nodes: BTreeMap<u32, [f64; 6]>,
    edges: BTreeMap<(u32, u32), f64>,
}

#[derive(Debug, Clone)]
struct SinkAcc {
    count: f64,
    total: LogHistogram,
    comps: Vec<LogHistogram>,
}

impl SinkAcc {
    fn new() -> SinkAcc {
        SinkAcc {
            count: 0.0,
            total: LogHistogram::new(LogHistogram::DEFAULT_ALPHA),
            comps: (0..6)
                .map(|_| LogHistogram::new(LogHistogram::DEFAULT_ALPHA))
                .collect(),
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LinkAcc {
    seconds: f64,
    events: f64,
}

impl XrayRecorder {
    /// Creates a recorder with the given reporting-window length
    /// (seconds, must be positive).
    pub fn new(window_s: f64) -> XrayRecorder {
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "xray window must be positive"
        );
        XrayRecorder {
            window_s,
            ops: BTreeMap::new(),
            sites: BTreeMap::new(),
            windows: BTreeMap::new(),
            links: BTreeMap::new(),
            adaptation: Vec::new(),
        }
    }

    /// Registers operator display names (for folded stacks/reports).
    pub fn set_ops(&mut self, ops: impl IntoIterator<Item = (u32, String)>) {
        self.ops.extend(ops);
    }

    /// Registers site display names (for the link table).
    pub fn set_sites(&mut self, sites: impl IntoIterator<Item = (u32, String)>) {
        self.sites.extend(sites);
    }

    fn window_of(&self, now_s: f64) -> i64 {
        (now_s / self.window_s).floor() as i64
    }

    /// Folds a delivered cohort's closed ledger into the sink's
    /// per-window breakdown. `total` is the exact delay the engine
    /// reports to the end-to-end histogram; `comps` the six closed
    /// components; `weight` the event count.
    pub fn observe_delivery(
        &mut self,
        now_s: f64,
        sink: u32,
        total: f64,
        comps: [f64; 6],
        weight: f64,
    ) {
        if weight <= 0.0 {
            return;
        }
        let w = self.window_of(now_s);
        let acc = self
            .windows
            .entry(w)
            .or_default()
            .sinks
            .entry(sink)
            .or_insert_with(SinkAcc::new);
        acc.count += weight;
        acc.total.observe(total.max(0.0), weight);
        for (i, c) in comps.iter().enumerate() {
            acc.comps[i].observe(c.max(0.0), weight);
        }
    }

    /// Charges flow time (seconds·events per component) to the
    /// operator where it was spent.
    pub fn charge_node(&mut self, now_s: f64, op: u32, comps: [f64; 6]) {
        if comps.iter().all(|c| *c == 0.0) {
            return;
        }
        let w = self.window_of(now_s);
        let node = self
            .windows
            .entry(w)
            .or_default()
            .nodes
            .entry(op)
            .or_insert([0.0; 6]);
        for (acc, c) in node.iter_mut().zip(comps.iter()) {
            *acc += c;
        }
    }

    /// Charges transit flow time (seconds·events) to a logical DAG
    /// edge. Zero charges still register the edge so critical-path
    /// extraction sees the full adjacency.
    pub fn charge_edge(&mut self, now_s: f64, from_op: u32, to_op: u32, seconds: f64) {
        let w = self.window_of(now_s);
        *self
            .windows
            .entry(w)
            .or_default()
            .edges
            .entry((from_op, to_op))
            .or_insert(0.0) += seconds;
    }

    /// Charges transit flow time to a physical WAN link (whole-run,
    /// not windowed).
    pub fn charge_link(&mut self, from_site: u32, to_site: u32, seconds: f64, events: f64) {
        let acc = self.links.entry((from_site, to_site)).or_default();
        acc.seconds += seconds;
        acc.events += events;
    }

    /// Records one control-plane adaptation-lag measurement (seconds
    /// from a failure's onset to the reconfiguration taking effect).
    pub fn note_adaptation(&mut self, now_s: f64, lag_s: f64) {
        self.adaptation.push((now_s, lag_s));
    }

    /// Per-sink `(op, count, component sums)` rows for one window
    /// index (empty when the window saw no deliveries). Used by the
    /// engine to emit breakdown telemetry at window rollover.
    pub fn sink_breakdown(&self, window_idx: i64) -> Vec<(u32, f64, [f64; 6])> {
        let Some(acc) = self.windows.get(&window_idx) else {
            return Vec::new();
        };
        acc.sinks
            .iter()
            .map(|(op, s)| {
                let mut comps = [0.0; 6];
                for (i, h) in s.comps.iter().enumerate() {
                    comps[i] = h.sum();
                }
                (*op, s.count, comps)
            })
            .collect()
    }

    /// Snapshots the accumulated state into a serializable run record.
    pub fn finalize(&self) -> XrayRun {
        XrayRun {
            window_s: self.window_s,
            ops: self.ops.iter().map(|(k, v)| (*k, v.clone())).collect(),
            sites: self.sites.iter().map(|(k, v)| (*k, v.clone())).collect(),
            windows: self
                .windows
                .iter()
                .map(|(w, acc)| XrayWindow {
                    start_s: *w as f64 * self.window_s,
                    sinks: acc
                        .sinks
                        .iter()
                        .map(|(op, s)| XraySink {
                            op: *op,
                            count: s.count,
                            total: s.total.clone(),
                            comps: s.comps.clone(),
                        })
                        .collect(),
                    nodes: acc
                        .nodes
                        .iter()
                        .map(|(op, comps)| XrayNode {
                            op: *op,
                            comps: comps.to_vec(),
                        })
                        .collect(),
                    edges: acc
                        .edges
                        .iter()
                        .map(|((f, t), s)| XrayEdge {
                            from: *f,
                            to: *t,
                            seconds: *s,
                        })
                        .collect(),
                })
                .collect(),
            links: self
                .links
                .iter()
                .map(|((f, t), acc)| XrayLink {
                    from_site: *f,
                    to_site: *t,
                    seconds: acc.seconds,
                    events: acc.events,
                })
                .collect(),
            adaptation: self.adaptation.clone(),
        }
    }
}

/// Serializable attribution snapshot for one engine run (or a merge of
/// shard runs).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XrayRun {
    /// Reporting-window length in seconds.
    pub window_s: f64,
    /// Operator id → display name.
    pub ops: Vec<(u32, String)>,
    /// Site id → display name.
    pub sites: Vec<(u32, String)>,
    /// Per-window breakdowns, ascending by start time.
    pub windows: Vec<XrayWindow>,
    /// Whole-run per-WAN-link transit accounting.
    pub links: Vec<XrayLink>,
    /// Control-plane adaptation-lag measurements as `(at_s, lag_s)`
    /// pairs, in observation order.
    pub adaptation: Vec<(f64, f64)>,
}

/// One reporting window's attribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XrayWindow {
    /// Window start (sim seconds).
    pub start_s: f64,
    /// Delivery-view breakdown per sink.
    pub sinks: Vec<XraySink>,
    /// Flow-view seconds·events per operator.
    pub nodes: Vec<XrayNode>,
    /// Flow-view transit seconds·events per DAG edge.
    pub edges: Vec<XrayEdge>,
}

/// Per-sink component breakdown histograms for one window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XraySink {
    /// Sink operator id.
    pub op: u32,
    /// Delivered event count.
    pub count: f64,
    /// End-to-end delay histogram (delay-metric-exact).
    pub total: LogHistogram,
    /// One histogram per component, indexed by [`Component::ALL`].
    pub comps: Vec<LogHistogram>,
}

/// Flow-time charge at one operator for one window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XrayNode {
    /// Operator id.
    pub op: u32,
    /// Seconds·events per component, indexed by [`Component::ALL`].
    pub comps: Vec<f64>,
}

/// Flow-time transit charge on one DAG edge for one window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XrayEdge {
    /// Upstream operator id.
    pub from: u32,
    /// Downstream operator id.
    pub to: u32,
    /// Transit seconds·events carried over this edge.
    pub seconds: f64,
}

impl XrayWindow {
    /// Merges another window's aggregates into this one (same start).
    fn merge(&mut self, other: &XrayWindow) {
        for os in &other.sinks {
            match self.sinks.iter_mut().find(|s| s.op == os.op) {
                Some(s) => {
                    s.count += os.count;
                    s.total.merge(&os.total);
                    for (h, oh) in s.comps.iter_mut().zip(os.comps.iter()) {
                        h.merge(oh);
                    }
                }
                None => self.sinks.push(os.clone()),
            }
        }
        self.sinks.sort_by_key(|s| s.op);
        for on in &other.nodes {
            match self.nodes.iter_mut().find(|n| n.op == on.op) {
                Some(n) => {
                    for (c, oc) in n.comps.iter_mut().zip(on.comps.iter()) {
                        *c += oc;
                    }
                }
                None => self.nodes.push(on.clone()),
            }
        }
        self.nodes.sort_by_key(|n| n.op);
        for oe in &other.edges {
            match self
                .edges
                .iter_mut()
                .find(|e| e.from == oe.from && e.to == oe.to)
            {
                Some(e) => e.seconds += oe.seconds,
                None => self.edges.push(oe.clone()),
            }
        }
        self.edges.sort_by_key(|e| (e.from, e.to));
    }
}

/// Whole-run transit accounting for one directed WAN link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct XrayLink {
    /// Source site id.
    pub from_site: u32,
    /// Destination site id.
    pub to_site: u32,
    /// Transit seconds·events carried over this link.
    pub seconds: f64,
    /// Event count carried over this link.
    pub events: f64,
}

/// One extracted critical path through the DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Operator chain, upstream first.
    pub ops: Vec<u32>,
    /// Total flow seconds·events along the chain.
    pub total: f64,
    /// Component split of `total`, indexed by [`Component::ALL`]
    /// (edge transit folds into the transit component).
    pub comps: [f64; 6],
}

impl XrayRun {
    /// Merges another run's aggregates into this one (histogram merge
    /// per sink, sums elsewhere), aligning windows by start time.
    /// Merge is exact: shard-wise recording plus merge equals
    /// single-stream recording, like the delay histogram.
    pub fn merge(&mut self, other: &XrayRun) {
        for (id, name) in &other.ops {
            if !self.ops.iter().any(|(i, _)| i == id) {
                self.ops.push((*id, name.clone()));
            }
        }
        self.ops.sort_by_key(|o| o.0);
        for (id, name) in &other.sites {
            if !self.sites.iter().any(|(i, _)| i == id) {
                self.sites.push((*id, name.clone()));
            }
        }
        self.sites.sort_by_key(|s| s.0);

        for ow in &other.windows {
            match self.windows.iter_mut().find(|w| w.start_s == ow.start_s) {
                Some(w) => w.merge(ow),
                None => self.windows.push(ow.clone()),
            }
        }
        self.windows.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));

        for ol in &other.links {
            match self
                .links
                .iter_mut()
                .find(|l| l.from_site == ol.from_site && l.to_site == ol.to_site)
            {
                Some(l) => {
                    l.seconds += ol.seconds;
                    l.events += ol.events;
                }
                None => self.links.push(ol.clone()),
            }
        }
        self.links.sort_by_key(|l| (l.from_site, l.to_site));

        self.adaptation.extend(other.adaptation.iter().copied());
        self.adaptation
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    }

    /// Display name for an operator.
    pub fn op_name(&self, op: u32) -> String {
        self.ops
            .iter()
            .find(|(id, _)| *id == op)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("op{op}"))
    }

    /// Display name for a site.
    pub fn site_name(&self, site: u32) -> String {
        self.sites
            .iter()
            .find(|(id, _)| *id == site)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("site{site}"))
    }

    /// Whole-run component shares across all sinks/windows
    /// (delivery view), normalized to sum to 1; all-zero when no
    /// deliveries were observed.
    pub fn shares(&self) -> [f64; 6] {
        let mut sums = [0.0; 6];
        for w in &self.windows {
            for s in &w.sinks {
                for (i, h) in s.comps.iter().enumerate() {
                    sums[i] += h.sum();
                }
            }
        }
        let total: f64 = sums.iter().sum();
        if total > 0.0 {
            for v in &mut sums {
                *v /= total;
            }
        }
        sums
    }

    /// Maximum relative conservation error across all (window, sink)
    /// cells: |Σ component sums − delay sum| / delay sum. The
    /// acceptance bound is 1e-6.
    pub fn conservation_error(&self) -> f64 {
        let mut worst = 0.0f64;
        for w in &self.windows {
            for s in &w.sinks {
                let total = s.total.sum();
                let parts: f64 = s.comps.iter().map(|h| h.sum()).sum();
                let err = if total.abs() > 1e-9 {
                    (parts - total).abs() / total.abs()
                } else {
                    (parts - total).abs()
                };
                worst = worst.max(err);
            }
        }
        worst
    }

    /// Extracts the top-`k` critical paths through the DAG for one
    /// window: for each terminal operator, the op→op chain maximizing
    /// the summed flow time (node components + edge transit), ranked
    /// by that sum. Deterministic: ties break toward the smaller
    /// operator id.
    pub fn critical_paths(&self, window: &XrayWindow, k: usize) -> Vec<CriticalPath> {
        let node_w: BTreeMap<u32, &Vec<f64>> =
            window.nodes.iter().map(|n| (n.op, &n.comps)).collect();
        let mut incoming: BTreeMap<u32, Vec<(u32, f64)>> = BTreeMap::new();
        let mut has_out: BTreeMap<u32, bool> = BTreeMap::new();
        for n in node_w.keys() {
            has_out.entry(*n).or_insert(false);
        }
        for e in &window.edges {
            incoming.entry(e.to).or_default().push((e.from, e.seconds));
            has_out.insert(e.from, true);
            has_out.entry(e.to).or_insert(false);
        }

        // best[n] = max flow time of any chain ending at n; iterate to
        // fixpoint over ascending op ids (DAG edges go low→high in our
        // plans, but the loop converges for any acyclic orientation).
        let mut best: BTreeMap<u32, (f64, Option<u32>)> = BTreeMap::new();
        let ids: Vec<u32> = has_out.keys().copied().collect();
        for _ in 0..ids.len().max(1) {
            let mut changed = false;
            for n in &ids {
                let own: f64 = node_w.get(n).map(|c| c.iter().sum()).unwrap_or(0.0);
                let mut cand = (own, None);
                if let Some(ins) = incoming.get(n) {
                    for (from, esecs) in ins {
                        if *from == *n {
                            continue;
                        }
                        let up = best.get(from).map(|(b, _)| *b).unwrap_or(0.0);
                        let total = own + esecs + up;
                        if total > cand.0 + 1e-12
                            || (total > cand.0 - 1e-12
                                && cand.1.map(|p| *from < p).unwrap_or(false))
                        {
                            cand = (total, Some(*from));
                        }
                    }
                }
                let prev = best.get(n).copied();
                if prev != Some(cand) {
                    best.insert(*n, cand);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mut terminals: Vec<u32> = has_out
            .iter()
            .filter(|(_, out)| !**out)
            .map(|(n, _)| *n)
            .collect();
        terminals.sort_by(|a, b| {
            let ba = best.get(a).map(|(v, _)| *v).unwrap_or(0.0);
            let bb = best.get(b).map(|(v, _)| *v).unwrap_or(0.0);
            bb.total_cmp(&ba).then(a.cmp(b))
        });

        terminals
            .into_iter()
            .take(k)
            .map(|t| {
                let mut ops = vec![t];
                let mut cur = t;
                while let Some((_, Some(prev))) = best.get(&cur) {
                    if ops.contains(prev) {
                        break;
                    }
                    ops.push(*prev);
                    cur = *prev;
                }
                ops.reverse();
                let mut comps = [0.0; 6];
                for (i, pair) in ops.iter().enumerate() {
                    if let Some(c) = node_w.get(pair) {
                        for (j, v) in c.iter().enumerate() {
                            comps[j] += v;
                        }
                    }
                    if i + 1 < ops.len() {
                        let (f, t2) = (ops[i], ops[i + 1]);
                        if let Some(e) = window.edges.iter().find(|e| e.from == f && e.to == t2) {
                            comps[Component::Transit as usize] += e.seconds;
                        }
                    }
                }
                CriticalPath {
                    ops,
                    total: comps.iter().sum(),
                    comps,
                }
            })
            .collect()
    }

    /// Renders the flow view as folded stacks consumable by
    /// inferno/flamegraph: one line per
    /// `window;op-chain…;component value`, where the chain is the
    /// best-predecessor chain from the critical-path DP, the leaf is
    /// the component label, and the value is integer milliseconds ·
    /// events. Incoming-edge transit folds into the downstream
    /// operator's transit leaf, so every charge appears exactly once.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            // Reuse the DP to get a deterministic chain to each node.
            let paths = self.critical_paths(w, usize::MAX);
            let mut chain_to: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
            for p in &paths {
                for (i, op) in p.ops.iter().enumerate() {
                    chain_to.entry(*op).or_insert_with(|| p.ops[..=i].to_vec());
                }
            }
            let mut incoming_transit: BTreeMap<u32, f64> = BTreeMap::new();
            for e in &w.edges {
                *incoming_transit.entry(e.to).or_insert(0.0) += e.seconds;
            }
            for n in &w.nodes {
                let chain = chain_to.get(&n.op).cloned().unwrap_or_else(|| vec![n.op]);
                let prefix: Vec<String> = std::iter::once(format!("w{:07}", w.start_s as i64))
                    .chain(chain.iter().map(|op| self.op_name(*op)))
                    .collect();
                let mut comps = [0.0; 6];
                comps.copy_from_slice(&n.comps[..6]);
                comps[Component::Transit as usize] +=
                    incoming_transit.get(&n.op).copied().unwrap_or(0.0);
                for (i, c) in Component::ALL.iter().enumerate() {
                    let value = (comps[i] * 1000.0).round() as i64;
                    if value > 0 {
                        out.push_str(&prefix.join(";"));
                        out.push(';');
                        out.push_str(c.label());
                        out.push(' ');
                        out.push_str(&value.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run() -> XrayRun {
        let mut rec = XrayRecorder::new(100.0);
        rec.set_ops(vec![
            (0, "source".into()),
            (1, "filter".into()),
            (2, "sink".into()),
        ]);
        rec.set_sites(vec![(0, "edge-0".into()), (1, "center".into())]);
        rec.charge_node(10.0, 0, [0.0, 5.0, 0.0, 1.0, 0.0, 0.0]);
        rec.charge_node(20.0, 1, [3.0, 2.0, 0.0, 0.0, 0.0, 0.0]);
        rec.charge_node(30.0, 2, [1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        rec.charge_edge(15.0, 0, 1, 4.0);
        rec.charge_edge(25.0, 1, 2, 6.0);
        rec.charge_link(0, 1, 10.0, 100.0);
        rec.observe_delivery(30.0, 2, 10.0, [4.0, 3.0, 2.0, 1.0, 0.0, 0.0], 50.0);
        rec.finalize()
    }

    #[test]
    fn critical_path_walks_the_chain() {
        let run = sample_run();
        let paths = run.critical_paths(&run.windows[0], 3);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].ops, vec![0, 1, 2]);
        // 6 (source) + 4 (edge) + 5 (filter) + 6 (edge) + 2 (sink)
        assert!((paths[0].total - 23.0).abs() < 1e-9);
        assert!((paths[0].comps[Component::Transit as usize] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn folded_stacks_nest_and_conserve() {
        let run = sample_run();
        let folded = run.folded_stacks();
        assert!(folded.contains("w0000000;source;service 5000\n"));
        assert!(folded.contains("w0000000;source;filter;sink;queue 1000\n"));
        // Edge transit lands on the downstream frame.
        assert!(folded.contains("w0000000;source;filter;transit 4000\n"));
        let total: i64 = folded
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<i64>().unwrap())
            .sum();
        // 13 node-seconds + 10 edge-seconds, in ms.
        assert_eq!(total, 23_000);
    }

    #[test]
    fn delivery_view_is_conserved_and_merges_exactly() {
        let run = sample_run();
        assert!(
            run.conservation_error() < 1e-9,
            "{}",
            run.conservation_error()
        );

        let mut merged = sample_run();
        merged.merge(&run);
        assert!(merged.conservation_error() < 1e-9);
        let s = merged.windows[0].sinks.iter().find(|s| s.op == 2).unwrap();
        assert_eq!(s.count, 100.0);
        assert!((s.total.sum() - 1000.0).abs() < 1e-9);

        let shares = merged.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[0] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn merge_aligns_disjoint_windows_and_links() {
        let mut a = sample_run();
        let mut rec = XrayRecorder::new(100.0);
        rec.charge_node(150.0, 1, [1.0; 6]);
        rec.charge_link(1, 0, 2.0, 5.0);
        let b = rec.finalize();
        a.merge(&b);
        assert_eq!(a.windows.len(), 2);
        assert_eq!(a.windows[1].start_s, 100.0);
        assert_eq!(a.links.len(), 2);
    }
}
