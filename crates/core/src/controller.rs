//! Adaptation controllers: WASP and the paper's baselines.
//!
//! A [`Controller`] is invoked once per monitoring interval (the paper
//! used 40 s, §8.2) with mutable access to the engine — the role of
//! the Reconfiguration Manager in Fig. 3. Shipping controllers:
//!
//! * [`WaspController`] — the full §6 policy (and, via
//!   [`PolicyConfig`] flags, the `Re-assign` / `Scale` / `Re-plan`
//!   single-technique variants of §8.5);
//! * [`NoAdaptController`] — never adapts;
//! * [`DegradeController`] — drops late events against an SLO instead
//!   of adapting (the degradation baseline).

use crate::controlplane::{ControlPlaneMetrics, ControlPlaneStats, LossyControl, TruthOutage};
use crate::diagnose::{diagnose_with_history, DiagnosisConfig, Health};
use crate::estimator::WorkloadEstimate;
use crate::policy::{Action, Policy, PolicyConfig};
use crate::replanner::{GenericReplanner, QueryReplanner};
use wasp_controlplane::channel::{AckOutcome, CommandEnvelope};
use wasp_controlplane::config::ControlPlaneConfig;
use wasp_controlplane::detector::DetectorEvent;
use wasp_metrics::{Counter, Gauge, Histogram, MetricsHub};
use wasp_streamsim::engine::{Command, Engine};
use wasp_streamsim::metrics::{FailureEvent, QuerySnapshot};
use wasp_telemetry::{Event as TelEvent, RejectReason, Telemetry};

/// A reconfiguration manager driven by monitoring rounds.
pub trait Controller {
    /// Display name (used in experiment reports).
    fn name(&self) -> &str;

    /// Called once per monitoring interval.
    fn on_monitor(&mut self, engine: &mut Engine);
}

/// Runs an engine under a controller for `duration_s`, invoking the
/// controller every `interval_s` of simulated time.
pub fn run_controlled(
    engine: &mut Engine,
    controller: &mut dyn Controller,
    duration_s: f64,
    interval_s: f64,
) {
    let end = engine.now().secs() + duration_s;
    while engine.now().secs() < end - 1e-9 {
        let chunk = interval_s.min(end - engine.now().secs());
        engine.run(chunk);
        if engine.now().secs() < end - 1e-9 {
            controller.on_monitor(engine);
        }
    }
}

/// The static baseline: never adapts (the paper's `No Adapt`).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoAdaptController;

impl Controller for NoAdaptController {
    fn name(&self) -> &str {
        "No Adapt"
    }

    fn on_monitor(&mut self, _engine: &mut Engine) {}
}

/// The degradation baseline: drop events that would miss the SLO
/// (§8.4 used a 10 s SLO). Never re-optimizes.
#[derive(Debug, Clone, Copy)]
pub struct DegradeController {
    slo_s: f64,
    armed: bool,
}

impl DegradeController {
    /// Creates the baseline with the given SLO in seconds.
    pub fn new(slo_s: f64) -> DegradeController {
        DegradeController {
            slo_s,
            armed: false,
        }
    }
}

impl Controller for DegradeController {
    fn name(&self) -> &str {
        "Degrade"
    }

    fn on_monitor(&mut self, engine: &mut Engine) {
        if !self.armed {
            engine
                .apply(Command::SetDropSlo(Some(self.slo_s)))
                .expect("setting the drop SLO cannot fail");
            self.armed = true;
        }
    }
}

/// Pre-registered derived-SLO instruments for the controller.
///
/// All handles are resolved once in [`WaspController::with_metrics`]
/// so the per-round cost is a handful of `Cell` stores; when the hub
/// is disabled the handles are no-ops and nothing is registered.
#[derive(Debug)]
struct ControllerMetrics {
    /// Monitoring rounds executed (including emergency rounds).
    rounds: Counter,
    /// Successfully applied normal-path adaptation commands.
    actions: Counter,
    /// Successfully applied emergency re-assignments.
    emergency_actions: Counter,
    /// End-to-end delivery delay quantiles over the whole run so far,
    /// refreshed every round from the engine's streaming histogram.
    delay_p50: Gauge,
    delay_p95: Gauge,
    delay_p99: Gauge,
    /// Adaptation lag: seconds from an observed site failure to the
    /// first successful emergency re-assignment (or to the site's
    /// restoration, when the failure healed on its own first).
    adaptation_lag: Histogram,
}

impl ControllerMetrics {
    fn build(hub: &MetricsHub) -> ControllerMetrics {
        const SLO_HELP: &str = "End-to-end delivery delay quantile over the run so far";
        ControllerMetrics {
            rounds: hub.counter(
                "wasp_controller_rounds_total",
                "Monitoring rounds executed by the controller",
                &[],
            ),
            actions: hub.counter(
                "wasp_controller_actions_total",
                "Adaptation commands successfully applied on the normal path",
                &[],
            ),
            emergency_actions: hub.counter(
                "wasp_controller_emergency_actions_total",
                "Emergency re-assignments successfully applied after site failures",
                &[],
            ),
            delay_p50: hub.gauge("wasp_slo_delay_seconds", SLO_HELP, &[("quantile", "0.50")]),
            delay_p95: hub.gauge("wasp_slo_delay_seconds", SLO_HELP, &[("quantile", "0.95")]),
            delay_p99: hub.gauge("wasp_slo_delay_seconds", SLO_HELP, &[("quantile", "0.99")]),
            adaptation_lag: hub.histogram(
                "wasp_adaptation_lag_seconds",
                "Seconds from an observed site failure to the first successful \
                 emergency re-assignment (or restoration) resolving it",
                &[],
            ),
        }
    }
}

/// The WASP adaptation controller (§6): monitors, estimates the actual
/// workload, diagnoses, and applies the policy's decision.
pub struct WaspController {
    policy: Policy,
    diagnosis_cfg: DiagnosisConfig,
    replanner: Box<dyn QueryReplanner>,
    label: String,
    /// Per-source unsent backlog at the previous round (for the
    /// growth-gated lag check).
    source_backlogs: std::collections::BTreeMap<wasp_streamsim::ids::OpId, f64>,
    /// Background re-planning period for long-term dynamics (§6.2),
    /// if enabled.
    periodic_replan_s: Option<f64>,
    last_periodic_replan_s: f64,
    /// Automatic α tuning (the paper's stated future work), if
    /// enabled.
    alpha_tuner: Option<crate::tuning::AlphaTuner>,
    /// Per-operator cooldown expiry (sim seconds): no further
    /// emergency re-assignment of that operator before this time, so
    /// a flapping site cannot bounce an operator back and forth.
    emergency_cooldowns: std::collections::BTreeMap<wasp_streamsim::ids::OpId, f64>,
    /// Earliest sim time of the next emergency attempt after a failed
    /// `engine.apply` (exponential backoff).
    emergency_next_attempt_s: f64,
    /// Current backoff delay, doubled on every failed attempt.
    emergency_backoff_s: f64,
    /// Telemetry handle; shared with the policy so controller spans
    /// and policy audit events interleave in one log.
    tel: Telemetry,
    /// Derived SLO/adaptation instruments (`None` when no recording
    /// hub was attached).
    cm: Option<ControllerMetrics>,
    /// Site failures observed but not yet resolved by a successful
    /// emergency action or a restoration: `(site, observed_at_s)`.
    pending_failures: Vec<(wasp_netsim::site::SiteId, f64)>,
    /// Adaptation-lag samples not yet handed to the engine's xray
    /// recorder (accumulated where no `&mut Engine` is in scope).
    xray_lags: Vec<f64>,
    /// Lossy-control-plane state (`None` in oracle mode, the default).
    lossy: Option<LossyControl>,
    /// Hub retained so the control-plane instruments can be resolved
    /// lazily on the first lossy round, whatever the builder order.
    hub: MetricsHub,
}

/// Initial emergency-retry backoff; shorter than a monitoring
/// interval, so the first retry happens on the very next round.
const EMERGENCY_BACKOFF_INITIAL_S: f64 = 5.0;
/// Backoff ceiling (≈ 8 monitoring rounds at the paper's 40 s).
const EMERGENCY_BACKOFF_MAX_S: f64 = 320.0;

impl std::fmt::Debug for WaspController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaspController")
            .field("label", &self.label)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl WaspController {
    /// Full WASP with the paper's defaults and the generic physical
    /// replanner.
    pub fn new(cfg: PolicyConfig) -> WaspController {
        WaspController::with_replanner(cfg, Box::new(GenericReplanner::new()))
    }

    /// Full WASP with a custom replanner (e.g. the join-order
    /// replanner for join queries).
    pub fn with_replanner(cfg: PolicyConfig, replanner: Box<dyn QueryReplanner>) -> WaspController {
        let label = match (cfg.allow_reassign, cfg.allow_scale, cfg.allow_replan) {
            (true, true, true) => "WASP",
            (true, false, false) => "Re-assign",
            (true, true, false) => "Scale",
            (false, false, true) => "Re-plan",
            _ => "WASP (custom)",
        }
        .to_string();
        WaspController {
            policy: Policy::new(cfg),
            diagnosis_cfg: DiagnosisConfig::default(),
            replanner,
            label,
            source_backlogs: std::collections::BTreeMap::new(),
            periodic_replan_s: None,
            last_periodic_replan_s: 0.0,
            alpha_tuner: None,
            emergency_cooldowns: std::collections::BTreeMap::new(),
            emergency_next_attempt_s: 0.0,
            emergency_backoff_s: EMERGENCY_BACKOFF_INITIAL_S,
            tel: Telemetry::disabled(),
            cm: None,
            pending_failures: Vec::new(),
            xray_lags: Vec::new(),
            lossy: None,
            hub: MetricsHub::disabled(),
        }
    }

    /// Attaches a telemetry sink to the controller *and* its policy:
    /// monitor-round spans, per-stage diagnoses, the decision audit
    /// trail, and command outcomes are all emitted into it.
    pub fn with_telemetry(mut self, tel: Telemetry) -> WaspController {
        self.policy.set_telemetry(tel.clone());
        self.tel = tel;
        self
    }

    /// Attaches a metrics hub: every round the controller refreshes
    /// the derived SLO gauges (p50/p95/p99 delivery delay) and counts
    /// rounds/actions; site failures feed the adaptation-lag
    /// histogram. A disabled hub registers nothing and costs nothing.
    pub fn with_metrics(mut self, hub: MetricsHub) -> WaspController {
        self.cm = hub.is_enabled().then(|| ControllerMetrics::build(&hub));
        self.hub = hub;
        self
    }

    /// Selects the control-plane mode. [`ControlPlaneConfig::Oracle`]
    /// (the default) leaves the controller reading truth failure state
    /// from snapshots and applying commands synchronously — the exact
    /// pre-control-plane behaviour. [`ControlPlaneConfig::Lossy`]
    /// switches the controller to heartbeat-based failure detection
    /// and fenced, retried command submission; the paired engine must
    /// have [`Engine::enable_lossy_control`] called with the same
    /// config.
    pub fn with_control_plane(mut self, cfg: ControlPlaneConfig) -> WaspController {
        self.lossy = match cfg {
            ControlPlaneConfig::Oracle => None,
            ControlPlaneConfig::Lossy(lossy_cfg) => Some(LossyControl::new(lossy_cfg)),
        };
        self
    }

    /// Detector-accuracy and command-channel counters for the lossy
    /// control plane (`None` in oracle mode).
    pub fn control_stats(&self) -> Option<&ControlPlaneStats> {
        self.lossy.as_ref().map(|l| &l.stats)
    }

    /// The controller's current fencing epoch (`None` in oracle mode).
    pub fn control_epoch(&self) -> Option<u64> {
        self.lossy.as_ref().map(|l| l.epoch)
    }

    /// The lossy-control-plane knobs in force (`None` in oracle mode).
    pub fn control_config(&self) -> Option<&wasp_controlplane::config::LossyControlConfig> {
        self.lossy.as_ref().map(|l| &l.cfg)
    }

    /// Enables automatic α tuning: quick re-adaptations lower α (more
    /// headroom), long stable streaks raise it (better utilization).
    pub fn with_adaptive_alpha(mut self) -> WaspController {
        self.alpha_tuner = Some(crate::tuning::AlphaTuner::starting_at(
            self.policy.config().alpha,
        ));
        self
    }

    /// The α currently in force (tuned or fixed).
    pub fn current_alpha(&self) -> f64 {
        self.policy.config().alpha
    }

    /// Enables periodic *background* re-planning every `period_s`
    /// seconds of simulated time — the paper's answer to long-term,
    /// predictable dynamics such as daily workload shifts (§6.2):
    /// even a healthy query is periodically re-evaluated against the
    /// current environment.
    pub fn with_periodic_replan(mut self, period_s: f64) -> WaspController {
        self.periodic_replan_s = Some(period_s);
        self
    }

    /// The §8.5 `Re-assign` variant: only task re-assignment.
    pub fn reassign_only() -> WaspController {
        WaspController::new(PolicyConfig {
            allow_scale: false,
            allow_replan: false,
            scale_down: false,
            ..PolicyConfig::default()
        })
    }

    /// The §8.5 `Scale` variant: re-assignment first, scaling when no
    /// placement exists (and gradual scale-down).
    pub fn scale_only() -> WaspController {
        WaspController::new(PolicyConfig {
            allow_replan: false,
            ..PolicyConfig::default()
        })
    }

    /// The §8.5 `Re-plan` variant: whole-pipeline re-planning only,
    /// never changing parallelism.
    pub fn replan_only() -> WaspController {
        WaspController::new(PolicyConfig {
            allow_reassign: false,
            allow_scale: false,
            scale_down: false,
            ..PolicyConfig::default()
        })
    }

    /// Access to the policy (e.g. capacity estimates) for inspection.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Per-round metric refresh: the rounds counter, the derived SLO
    /// delay gauges, and the pending-failure ledger that feeds the
    /// adaptation-lag histogram. A no-op without an attached hub.
    fn observe_round_metrics(
        &mut self,
        engine: &Engine,
        snap: &wasp_streamsim::metrics::QuerySnapshot,
    ) {
        if let Some(cm) = &self.cm {
            cm.rounds.inc();
            let m = engine.metrics();
            if let Some(p50) = m.delay_quantile(0.5) {
                cm.delay_p50.set(p50);
            }
            if let Some(p95) = m.delay_quantile(0.95) {
                cm.delay_p95.set(p95);
            }
            if let Some(p99) = m.delay_quantile(0.99) {
                cm.delay_p99.set(p99);
            }
        }
        // The failure ledger feeds both the adaptation-lag histogram
        // and (when attribution is on) the xray adaptation record.
        if self.cm.is_none() && !engine.xray_enabled() {
            return;
        }
        for ev in &snap.events {
            match ev {
                FailureEvent::SiteDown { site, at }
                    if !self.pending_failures.iter().any(|(s, _)| s == site) =>
                {
                    self.pending_failures.push((*site, at.secs()));
                }
                FailureEvent::SiteRestored { site, at } => {
                    // The failure healed before (or without) an
                    // emergency action: the lag is down→restored.
                    if let Some(pos) = self.pending_failures.iter().position(|(s, _)| s == site) {
                        let (_, down_at) = self.pending_failures.remove(pos);
                        let lag = (at.secs() - down_at).max(0.0);
                        if let Some(cm) = &self.cm {
                            cm.adaptation_lag.observe(lag, 1.0);
                        }
                        if engine.xray_enabled() {
                            self.xray_lags.push(lag);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// The emergency re-assignment path (§8.6's failure reaction):
    /// re-solves placement over surviving slots for every operator
    /// with tasks on a failed site and applies the moves, with
    /// exponential backoff after failed applies and a per-operator
    /// cooldown so flapping sites cannot cause oscillation.
    fn handle_failures(
        &mut self,
        engine: &mut Engine,
        snap: &wasp_streamsim::metrics::QuerySnapshot,
    ) {
        let now = engine.now().secs();
        if now < self.emergency_next_attempt_s {
            // Backing off after failed recovery attempts.
            let until_s = self.emergency_next_attempt_s;
            self.tel.emit(now, || TelEvent::CandidateRejected {
                action: "emergency re-assign".into(),
                op: None,
                reason: RejectReason::BackoffActive { until_s },
            });
            return;
        }
        let plan = engine.plan().clone();
        self.policy.observe(&plan, snap);
        let est = WorkloadEstimate::from_snapshot(&plan, snap);
        let replay = Self::replay_estimates(engine, &plan);
        let actions = self.policy.emergency_actions_with_replay(
            &plan,
            snap,
            &est,
            engine.network(),
            engine.now(),
            &replay,
        );
        let mut any_failed = false;
        let mut any_applied = false;
        for (op, action) in actions {
            // Cooldown: an operator just moved off a flapping site
            // stays put until the cooldown expires, even if the site
            // fails again in the meantime.
            let cooled_until = self.emergency_cooldowns.get(&op).copied().unwrap_or(0.0);
            if now < cooled_until {
                self.tel.emit(now, || TelEvent::CandidateRejected {
                    action: "emergency re-assign".into(),
                    op: Some(op.0),
                    reason: RejectReason::CooldownActive {
                        until_s: cooled_until,
                    },
                });
                continue;
            }
            match engine.apply(action.command) {
                Ok(()) => {
                    any_applied = true;
                    self.tel.emit(now, || TelEvent::CommandApplied {
                        label: action.label.clone(),
                    });
                    engine.annotate(action.label);
                    self.emergency_cooldowns
                        .insert(op, now + self.policy.config().emergency_cooldown_s);
                }
                Err(err) => {
                    self.tel.emit(now, || TelEvent::CommandFailed {
                        label: action.label.clone(),
                        error: err.to_string(),
                    });
                    engine.annotate(format!("{} failed: {err}", action.label));
                    any_failed = true;
                }
            }
        }
        if any_applied {
            if let Some(cm) = &self.cm {
                cm.emergency_actions.inc();
            }
            // The query is re-routed around every failed site at
            // once, so one successful emergency round resolves
            // all pending failures.
            for (_, down_at) in self.pending_failures.drain(..) {
                let lag = (now - down_at).max(0.0);
                if let Some(cm) = &self.cm {
                    cm.adaptation_lag.observe(lag, 1.0);
                }
                engine.xray_note_adaptation_lag(lag);
            }
        }
        if any_failed {
            self.emergency_next_attempt_s = now + self.emergency_backoff_s;
            self.emergency_backoff_s =
                (self.emergency_backoff_s * 2.0).min(EMERGENCY_BACKOFF_MAX_S);
        } else {
            self.emergency_backoff_s = EMERGENCY_BACKOFF_INITIAL_S;
        }
    }

    /// Drops cooldown entries that expired or whose operator is no
    /// longer in the active plan (a plan switch renumbers operators),
    /// so the map cannot grow without bound across re-plans and a
    /// stale entry cannot block an unrelated operator of the new plan.
    fn prune_emergency_cooldowns(&mut self, now: f64, plan_len: usize) {
        self.emergency_cooldowns
            .retain(|op, until| *until > now && op.index() < plan_len);
    }

    /// First-round setup of the lossy control plane: registers every
    /// site at the detector (heartbeats have been flowing since t=0)
    /// and resolves metric instruments if a hub is attached.
    fn ensure_lossy_init(&mut self, engine: &Engine) {
        let lossy = self.lossy.as_mut().expect("lossy mode");
        if lossy.initialized {
            return;
        }
        lossy.initialized = true;
        for site in engine.network().topology().site_ids() {
            lossy.detector.register(site, 0.0);
        }
        if self.hub.is_enabled() && lossy.cpm.is_none() {
            lossy.cpm = Some(ControlPlaneMetrics::build(&self.hub));
        }
    }

    /// Wraps an action into a fenced envelope, hands it to the lossy
    /// channel, and starts tracking it for ack-timeout retries.
    fn dispatch_lossy(&mut self, engine: &mut Engine, action: Action, now: f64) {
        let plan_version = engine.plan_version();
        let lossy = self.lossy.as_mut().expect("lossy mode");
        let env = CommandEnvelope {
            id: lossy.next_id,
            epoch: lossy.epoch,
            plan_version,
            label: action.label,
            sent_s: now,
            payload: action.command,
        };
        lossy.next_id += 1;
        lossy.stats.enqueued += 1;
        self.tel.emit(now, || TelEvent::ControlCommandEnqueued {
            id: env.id,
            label: env.label.clone(),
            epoch: env.epoch,
            plan_version: env.plan_version,
        });
        lossy.retry.track(env.clone(), now);
        engine.submit(env);
    }

    /// Processes the acks that survived the trip back: resolves or
    /// re-arms retry tracks and attributes applied commands to the
    /// emergency/normal action counters.
    fn process_acks(&mut self, acks: Vec<wasp_controlplane::channel::CommandAck>, now: f64) {
        for ack in acks {
            let rtt = (now - ack.submitted_s).max(0.0);
            self.tel.emit(now, || TelEvent::ControlAckReceived {
                id: ack.id,
                label: ack.label.clone(),
                applied: ack.outcome.applied(),
                rtt_s: rtt,
            });
            let lossy = self.lossy.as_mut().expect("lossy mode");
            if let Some(cpm) = &lossy.cpm {
                cpm.command_rtt.observe(rtt, 1.0);
            }
            match &ack.outcome {
                AckOutcome::Applied => {
                    lossy.stats.acked_applied += 1;
                    lossy.retry.resolve(ack.id);
                    if ack.label.starts_with("emergency") {
                        if let Some(cm) = &self.cm {
                            cm.emergency_actions.inc();
                        }
                        // One applied emergency command re-routes
                        // around every confirmed site at once. No
                        // engine in scope here: xray lags are flushed
                        // on the next monitor round.
                        for (_, down_at) in self.pending_failures.drain(..) {
                            let lag = (now - down_at).max(0.0);
                            if let Some(cm) = &self.cm {
                                cm.adaptation_lag.observe(lag, 1.0);
                            }
                            self.xray_lags.push(lag);
                        }
                    } else if let Some(cm) = &self.cm {
                        cm.actions.inc();
                    }
                }
                // Stale and duplicate outcomes are final: the plan the
                // command belonged to has been superseded, or the
                // command already took effect on an earlier delivery.
                AckOutcome::Duplicate | AckOutcome::Stale { .. } => {
                    lossy.retry.resolve(ack.id);
                }
                // A domain rejection (site gone, mid-transition, …) is
                // retried with backoff: the condition may clear.
                AckOutcome::Rejected { .. } => {
                    lossy.retry.nack(ack.id, now);
                }
            }
        }
    }

    /// Re-sends commands whose ack timed out; abandons commands whose
    /// retry budget ran out or whose plan has been superseded.
    fn poll_retries(&mut self, engine: &mut Engine, now: f64) {
        let plan_version = engine.plan_version();
        let lossy = self.lossy.as_mut().expect("lossy mode");
        let decision = lossy.retry.poll(now);
        for (env, attempts) in decision.expired {
            lossy.stats.gave_up += 1;
            if let Some(cpm) = &lossy.cpm {
                cpm.gave_up.inc();
            }
            self.tel.emit(now, || TelEvent::ControlGaveUp {
                id: env.id,
                label: env.label.clone(),
                attempts,
                reason: "retry budget exhausted".into(),
            });
        }
        for (env, attempt) in decision.retry {
            if env.plan_version != plan_version {
                // The plan moved on since this command was decided;
                // re-sending it would only be fenced or mis-applied.
                lossy.retry.abandon(env.id);
                lossy.stats.gave_up += 1;
                if let Some(cpm) = &lossy.cpm {
                    cpm.gave_up.inc();
                }
                self.tel.emit(now, || TelEvent::ControlGaveUp {
                    id: env.id,
                    label: env.label.clone(),
                    attempts: attempt,
                    reason: "plan changed since submission".into(),
                });
                continue;
            }
            lossy.stats.retries += 1;
            if let Some(cpm) = &lossy.cpm {
                cpm.retries.inc();
            }
            self.tel.emit(now, || TelEvent::ControlRetry {
                id: env.id,
                label: env.label.clone(),
                attempt,
            });
            engine.submit(env);
        }
    }

    /// The engine's modeled recovery-replay estimates (`op → seconds`,
    /// base snapshot plus delta chain at the replay bandwidth) for the
    /// emergency audit trail. Empty unless delta-chain compaction
    /// modeling is on, so the audit output is unchanged otherwise.
    fn replay_estimates(
        engine: &Engine,
        plan: &wasp_streamsim::plan::LogicalPlan,
    ) -> std::collections::BTreeMap<wasp_streamsim::ids::OpId, f64> {
        plan.op_ids()
            .filter_map(|op| engine.recovery_replay_estimate(op).map(|s| (op, s)))
            .collect()
    }

    /// The emergency path driven by *detector* verdicts instead of
    /// truth state. No global backoff gate: the per-command retry
    /// machinery owns re-sends, and the per-operator cooldown (started
    /// at enqueue time) stops new decisions from bouncing an operator
    /// while its first command is still in flight.
    fn handle_failures_lossy(&mut self, engine: &mut Engine, view: &QuerySnapshot) {
        let now = engine.now().secs();
        let plan = engine.plan().clone();
        self.policy.observe(&plan, view);
        let est = WorkloadEstimate::from_snapshot(&plan, view);
        let replay = Self::replay_estimates(engine, &plan);
        let actions = self.policy.emergency_actions_with_replay(
            &plan,
            view,
            &est,
            engine.network(),
            engine.now(),
            &replay,
        );
        for (op, action) in actions {
            let cooled_until = self.emergency_cooldowns.get(&op).copied().unwrap_or(0.0);
            if now < cooled_until {
                self.tel.emit(now, || TelEvent::CandidateRejected {
                    action: "emergency re-assign".into(),
                    op: Some(op.0),
                    reason: RejectReason::CooldownActive {
                        until_s: cooled_until,
                    },
                });
                continue;
            }
            self.emergency_cooldowns
                .insert(op, now + self.policy.config().emergency_cooldown_s);
            self.dispatch_lossy(engine, action, now);
        }
    }

    /// One lossy monitoring round: drain the control channel, feed the
    /// detector, score it against truth (measurement only), settle
    /// acks and retries, then decide on the *detector's* view of the
    /// world — `snap.failed_sites` and the oracle failure events are
    /// never consulted for decisions.
    fn on_monitor_lossy(&mut self, engine: &mut Engine) {
        let tel = self.tel.clone();
        let now = engine.now().secs();
        let round = tel.span_begin(now, "monitor-round");
        self.prune_emergency_cooldowns(now, engine.plan().len());
        self.ensure_lossy_init(engine);
        // A fresh epoch per round: anything still in flight from an
        // earlier round is stale the moment this round decides.
        self.lossy.as_mut().expect("lossy mode").epoch += 1;
        let (heartbeats, acks) = engine.drain_control();
        for hb in heartbeats {
            let cleared = self
                .lossy
                .as_mut()
                .expect("lossy mode")
                .detector
                .observe(hb.site, hb.arrived_s);
            if let Some(DetectorEvent::Cleared { site, .. }) = cleared {
                let name = engine.network().topology().site(site).name().to_string();
                tel.emit(now, || TelEvent::SiteCleared {
                    site: site.0 as u32,
                    name,
                });
            }
        }
        let snap = engine.snapshot();
        self.observe_round_metrics(engine, &snap);
        {
            let lossy = self.lossy.as_mut().expect("lossy mode");
            // Truth ledger first, so a failure confirmed in the same
            // round it happened is scored as a true confirmation.
            for ev in &snap.events {
                match ev {
                    FailureEvent::SiteDown { site, at } => {
                        lossy.truth_down.entry(*site).or_insert(TruthOutage {
                            down_at: at.secs(),
                            confirmed: false,
                        });
                    }
                    FailureEvent::SiteRestored { site, .. } => {
                        if let Some(outage) = lossy.truth_down.remove(site) {
                            if !outage.confirmed {
                                lossy.stats.false_negatives += 1;
                                if let Some(cpm) = &lossy.cpm {
                                    cpm.false_negatives.inc();
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            for dev in lossy.detector.evaluate(now) {
                match dev {
                    DetectorEvent::Suspected { site, phi, .. } => {
                        let name = engine.network().topology().site(site).name().to_string();
                        tel.emit(now, || TelEvent::SiteSuspected {
                            site: site.0 as u32,
                            name,
                            phi,
                        });
                    }
                    DetectorEvent::Confirmed { site, silent_s, .. } => {
                        let name = engine.network().topology().site(site).name().to_string();
                        tel.emit(now, || TelEvent::SiteConfirmedDown {
                            site: site.0 as u32,
                            name,
                            silent_s,
                        });
                        match lossy.truth_down.get_mut(&site) {
                            Some(outage) if !outage.confirmed => {
                                outage.confirmed = true;
                                let lag = (now - outage.down_at).max(0.0);
                                lossy.stats.true_confirmations += 1;
                                lossy.stats.detection_lags_s.push(lag);
                                if let Some(cpm) = &lossy.cpm {
                                    cpm.detector_lag.observe(lag, 1.0);
                                }
                            }
                            Some(_) => {}
                            None => {
                                lossy.stats.false_positives += 1;
                                if let Some(cpm) = &lossy.cpm {
                                    cpm.false_positives.inc();
                                }
                            }
                        }
                    }
                    DetectorEvent::Cleared { .. } => {}
                }
            }
        }
        self.process_acks(acks, now);
        self.poll_retries(engine, now);
        let confirmed = self
            .lossy
            .as_ref()
            .expect("lossy mode")
            .detector
            .confirmed();
        if !confirmed.is_empty() {
            let emergency = tel.span_begin(now, "emergency-round");
            let view = lossy_view(&snap, &confirmed);
            self.handle_failures_lossy(engine, &view);
            tel.span_end(now, emergency);
            tel.span_end(now, round);
            return;
        }
        if engine.in_transition() {
            tel.emit(now, || TelEvent::NoActionTaken {
                reason: "mid-transition: rates and slots not stable".into(),
            });
            tel.span_end(now, round);
            return;
        }
        let view = lossy_view(&snap, &confirmed);
        self.normal_round(engine, &view, &tel, now);
        tel.span_end(now, round);
    }
}

/// The snapshot as the lossy controller is allowed to see it: failure
/// state comes from the detector, failed sites offer no slots, and the
/// oracle failure events are stripped (they remain visible to the
/// *measurement* ledgers, which read the original snapshot).
fn lossy_view(snap: &QuerySnapshot, confirmed: &[wasp_netsim::site::SiteId]) -> QuerySnapshot {
    let mut view = snap.clone();
    view.failed_sites = confirmed.to_vec();
    for site in confirmed {
        view.free_slots.insert(*site, 0);
    }
    view.events.retain(|ev| {
        !matches!(
            ev,
            FailureEvent::SiteDown { .. } | FailureEvent::SiteRestored { .. }
        )
    });
    view
}

impl Controller for WaspController {
    fn name(&self) -> &str {
        &self.label
    }

    fn on_monitor(&mut self, engine: &mut Engine) {
        // Hand any adaptation-lag samples recorded without an engine
        // in scope to the xray recorder (no-op when xray is off).
        for lag in self.xray_lags.drain(..) {
            engine.xray_note_adaptation_lag(lag);
        }
        // Lossy control plane: failure knowledge comes from heartbeat
        // silence and commands go over the fenced, retried channel.
        if self.lossy.is_some() {
            self.on_monitor_lossy(engine);
            return;
        }
        let tel = self.tel.clone();
        let now = engine.now().secs();
        let round = tel.span_begin(now, "monitor-round");
        self.prune_emergency_cooldowns(now, engine.plan().len());
        let snap = engine.snapshot();
        self.observe_round_metrics(engine, &snap);
        // Failure-reactive path: tasks on a dead site process nothing,
        // so every round spent waiting for the site to come back adds
        // directly to recovery time. Move affected operators off the
        // dead sites now instead of skipping the round.
        if !snap.failed_sites.is_empty() {
            let emergency = tel.span_begin(now, "emergency-round");
            self.handle_failures(engine, &snap);
            tel.span_end(now, emergency);
            tel.span_end(now, round);
            return;
        }
        // Mid-transition rounds are skipped: rates are not meaningful
        // and slots are not stable.
        if engine.in_transition() {
            tel.emit(now, || TelEvent::NoActionTaken {
                reason: "mid-transition: rates and slots not stable".into(),
            });
            tel.span_end(now, round);
            return;
        }
        self.normal_round(engine, &snap, &tel, now);
        tel.span_end(now, round);
    }
}

impl WaspController {
    /// The bottleneck-driven decision round shared by both control
    /// planes (diagnosis → decision → apply/dispatch → α tuning →
    /// periodic re-plan). Only the command path differs: oracle mode
    /// applies synchronously, lossy mode enqueues a fenced envelope.
    fn normal_round(
        &mut self,
        engine: &mut Engine,
        snap: &QuerySnapshot,
        tel: &Telemetry,
        now: f64,
    ) {
        let snap = snap.clone();
        let plan = engine.plan().clone();
        self.policy.observe(&plan, &snap);
        let est = WorkloadEstimate::from_snapshot(&plan, &snap);
        let diagnosis_span = tel.span_begin(now, "diagnosis");
        let diag = diagnose_with_history(
            &plan,
            &snap,
            &est,
            self.policy.capacity_estimates(),
            &self.diagnosis_cfg,
            Some(&self.source_backlogs),
        );
        if tel.is_enabled() {
            for op in plan.op_ids() {
                let stage = snap.stage(op);
                let (health, severity) = match diag.per_op[op.index()] {
                    Health::Healthy => ("healthy", 0.0),
                    Health::ComputeConstrained { severity } => ("compute", severity),
                    Health::NetworkConstrained { severity } => ("network", severity),
                    Health::Overprovisioned { utilization } => ("overprovisioned", utilization),
                };
                tel.emit(now, || TelEvent::Diagnosis {
                    op: op.0,
                    name: stage.name.clone(),
                    health: health.to_string(),
                    severity,
                    lambda_i: stage.lambda_i,
                    lambda_p: stage.lambda_p,
                    lambda_o: stage.lambda_o,
                    sigma: stage.sigma,
                    queue_events: stage.queue_events,
                    backpressure: stage.backpressure,
                });
            }
            if let Some((op, health)) = diag.bottleneck {
                let label = match health {
                    Health::ComputeConstrained { .. } => "compute",
                    Health::NetworkConstrained { .. } => "network",
                    _ => "other",
                };
                tel.emit(now, || TelEvent::BottleneckPicked {
                    op: op.0,
                    name: snap.stage(op).name.clone(),
                    health: label.to_string(),
                });
            }
        }
        tel.span_end(now, diagnosis_span);
        for src in plan.sources() {
            self.source_backlogs
                .insert(src, snap.stage(src).queue_events);
        }
        let physical = engine.physical().clone();
        let decide_span = tel.span_begin(now, "decide");
        let action = self.policy.decide(
            &plan,
            &physical,
            &snap,
            &est,
            &diag,
            engine.network(),
            engine.now(),
            self.replanner.as_ref(),
        );
        match &action {
            Some(a) => tel.emit(now, || TelEvent::DecisionTaken {
                action: a.label.clone(),
                op: None,
            }),
            None => tel.emit(now, || TelEvent::NoActionTaken {
                reason: if diag.bottleneck.is_none() {
                    "no bottleneck diagnosed".into()
                } else {
                    "bottleneck diagnosed but every candidate was rejected".into()
                },
            }),
        }
        tel.span_end(now, decide_span);
        let acted = action.is_some();
        if let Some(action) = action {
            let apply_span = tel.span_begin(now, "apply");
            if self.lossy.is_some() {
                self.dispatch_lossy(engine, action, now);
            } else {
                match engine.apply(action.command) {
                    Ok(()) => {
                        if let Some(cm) = &self.cm {
                            cm.actions.inc();
                        }
                        tel.emit(now, || TelEvent::CommandApplied {
                            label: action.label.clone(),
                        });
                        engine.annotate(action.label);
                    }
                    Err(err) => {
                        tel.emit(now, || TelEvent::CommandFailed {
                            label: action.label.clone(),
                            error: err.to_string(),
                        });
                        engine.annotate(format!("{} failed: {err}", action.label));
                    }
                }
            }
            tel.span_end(now, apply_span);
        }
        if let Some(tuner) = &mut self.alpha_tuner {
            let alpha = tuner.on_round(acted);
            self.policy.set_alpha(alpha);
        }
        if acted {
            return;
        }
        // Long-term dynamics: periodically re-evaluate the plan in the
        // background even when no bottleneck is present (§6.2).
        if let Some(period) = self.periodic_replan_s {
            let now = engine.now().secs();
            if now - self.last_periodic_replan_s >= period {
                self.last_periodic_replan_s = now;
                if let Some(switch) = self.replanner.replan(
                    &plan,
                    engine.physical(),
                    &snap,
                    &est,
                    engine.network(),
                    engine.now(),
                    self.policy.config(),
                ) {
                    if self.lossy.is_some() {
                        let action = Action {
                            label: "periodic re-plan".into(),
                            command: Command::SwitchPlan(Box::new(switch)),
                        };
                        self.dispatch_lossy(engine, action, now);
                    } else {
                        match engine.apply(Command::SwitchPlan(Box::new(switch))) {
                            Ok(()) => {
                                if let Some(cm) = &self.cm {
                                    cm.actions.inc();
                                }
                                tel.emit(now, || TelEvent::CommandApplied {
                                    label: "periodic re-plan".into(),
                                });
                                engine.annotate("periodic re-plan");
                            }
                            Err(err) => {
                                tel.emit(now, || TelEvent::CommandFailed {
                                    label: "periodic re-plan".into(),
                                    error: err.to_string(),
                                });
                                engine.annotate(format!("periodic re-plan failed: {err}"));
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::*;
    use wasp_netsim::dynamics::DynamicsScript;
    use wasp_netsim::trace::FactorSeries;
    use wasp_streamsim::prelude::*;

    /// Workload doubles at t=120: No-Adapt degrades, WASP recovers.
    fn doubled_workload_world() -> (DynamicsScript, f64) {
        (
            DynamicsScript::none().with_global_workload(FactorSeries::steps(1.0, &[(120.0, 2.0)])),
            600.0,
        )
    }

    #[test]
    fn wasp_resolves_compute_bottleneck_by_scaling_up() {
        // Filter capacity 1250 ev/s per task; workload 1000→2000 ev/s.
        let (script, dur) = doubled_workload_world();
        let (net, edge, dc) = two_site_world(100.0);
        let plan = linear_plan(edge, 1000.0, 800.0, 0.5);
        let mut eng = engine_with_script(net, plan, dc, script);
        let mut wasp = WaspController::new(PolicyConfig::default());
        run_controlled(&mut eng, &mut wasp, dur, 40.0);
        // Parallelism grew.
        assert!(
            eng.physical().parallelism(OpId(1)) >= 2,
            "filter parallelism {}",
            eng.physical().parallelism(OpId(1))
        );
        // And the query keeps up at the end (ratio ≈ 1 over the last
        // 100 s).
        let m = eng.metrics();
        let gen_late: f64 = m
            .ticks()
            .iter()
            .filter(|r| r.t > 500.0)
            .map(|r| r.generated)
            .sum();
        let del_late: f64 = m
            .ticks()
            .iter()
            .filter(|r| r.t > 500.0)
            .map(|r| r.delivered)
            .sum();
        assert!(
            del_late / (gen_late * 0.5) > 0.85,
            "late ratio {}",
            del_late / (gen_late * 0.5)
        );
        // The action was annotated.
        assert!(m.actions().iter().any(|(_, l)| l.contains("scale")));
    }

    #[test]
    fn wasp_resolves_network_bottleneck() {
        // 5000 ev/s × 100 B = 4 Mbps; edge→dc1 drops to 2 Mbps at
        // t=120 while edge→dc2 stays at 10 Mbps: WASP must move or
        // scale the filter away from the dead path.
        let (mut net, edge, dc1, dc2) = three_site_world(10.0);
        net.set_pair_factor(edge, dc1, FactorSeries::steps(1.0, &[(120.0, 0.2)]));
        let plan = linear_plan(edge, 5000.0, 5.0, 0.5);
        let mut eng = engine(net, plan, dc1);
        let mut wasp = WaspController::new(PolicyConfig::default());
        run_controlled(&mut eng, &mut wasp, 600.0, 40.0);
        let m = eng.metrics();
        // Some adaptation happened…
        assert!(
            m.actions().iter().any(|(_, l)| l.contains("re-assign")
                || l.contains("scale")
                || l.contains("re-plan")),
            "actions: {:?}",
            m.actions()
        );
        // …and the filter no longer sits (only) behind the degraded
        // link.
        let sites = eng.physical().placement(OpId(1)).sites();
        assert!(sites != vec![dc1], "filter still only at the degraded site");
        let _ = dc2;
        // Delivery keeps up late in the run.
        let gen_late: f64 = m
            .ticks()
            .iter()
            .filter(|r| r.t > 500.0)
            .map(|r| r.generated)
            .sum();
        let del_late: f64 = m
            .ticks()
            .iter()
            .filter(|r| r.t > 500.0)
            .map(|r| r.delivered)
            .sum();
        assert!(
            del_late / (gen_late * 0.5) > 0.8,
            "late ratio {}",
            del_late / (gen_late * 0.5)
        );
    }

    #[test]
    fn wasp_scales_down_after_load_drops() {
        // Workload spikes ×4 between t=120 and t=400, then returns to
        // baseline: WASP should scale up then reclaim tasks.
        let script = DynamicsScript::none()
            .with_global_workload(FactorSeries::steps(1.0, &[(120.0, 4.0), (400.0, 1.0)]));
        let (net, edge, dc) = two_site_world(100.0);
        let plan = linear_plan(edge, 1000.0, 800.0, 0.5);
        let mut eng = engine_with_script(net, plan, dc, script);
        let mut wasp = WaspController::new(PolicyConfig::default());
        run_controlled(&mut eng, &mut wasp, 1000.0, 40.0);
        let m = eng.metrics();
        let peak = m.ticks().iter().map(|r| r.total_tasks).max().unwrap();
        let final_tasks = m.ticks().last().unwrap().total_tasks;
        assert!(peak >= 4, "peak tasks {peak}"); // 3 base + scale-up
        assert!(
            final_tasks < peak,
            "should scale down: final {final_tasks} peak {peak}"
        );
        assert!(m.actions().iter().any(|(_, l)| l == "scale down"));
    }

    #[test]
    fn no_adapt_suffers_degrade_drops_wasp_keeps_all() {
        // The §8.4 contrast in miniature: double workload over a
        // saturating link.
        let run = |mk: &mut dyn Controller, slo: Option<f64>| {
            let (net, edge, dc) = two_site_world(6.0);
            let plan = linear_plan(edge, 5000.0, 5.0, 0.5);
            let physical = PhysicalPlan::initial(&plan, dc);
            let cfg = EngineConfig {
                drop_slo: slo,
                ..EngineConfig::default()
            };
            let script = DynamicsScript::none()
                .with_global_workload(FactorSeries::steps(1.0, &[(120.0, 2.0)]));
            let mut eng = Engine::new(net, script, plan, physical, cfg).unwrap();
            run_controlled(&mut eng, mk, 600.0, 40.0);
            let m = eng.metrics();
            (
                m.delay_quantile_between(500.0, 600.0, 0.5).unwrap_or(0.0),
                m.dropped_fraction(),
                m.total_delivered() / (m.total_generated() * 0.5),
            )
        };
        let (na_delay, na_drop, _na_ratio) = run(&mut NoAdaptController, None);
        let (dg_delay, dg_drop, dg_ratio) = run(&mut DegradeController::new(10.0), None);
        let (w_delay, w_drop, w_ratio) =
            run(&mut WaspController::new(PolicyConfig::default()), None);
        // No Adapt: no drops but huge delay.
        assert!(na_drop == 0.0 && na_delay > 50.0, "na {na_delay} {na_drop}");
        // Degrade: bounded delay but loses events.
        assert!(dg_delay < 15.0, "degrade delay {dg_delay}");
        assert!(dg_drop > 0.05 && dg_ratio < 0.98, "degrade drop {dg_drop}");
        // WASP: low delay AND no loss.
        assert!(w_delay < 15.0, "wasp delay {w_delay}");
        assert!(w_drop == 0.0, "wasp dropped {w_drop}");
        assert!(w_ratio > 0.9, "wasp ratio {w_ratio}");
    }

    #[test]
    fn controller_records_slo_and_action_metrics() {
        // Same world as the scale-up test, but with a recording hub
        // attached to both the engine and the controller: the derived
        // SLO gauges and action counters must be populated.
        let (script, dur) = doubled_workload_world();
        let (net, edge, dc) = two_site_world(100.0);
        let plan = linear_plan(edge, 1000.0, 800.0, 0.5);
        let mut eng = engine_with_script(net, plan, dc, script);
        let hub = MetricsHub::recording(40.0);
        eng.set_metrics(hub.clone());
        let mut wasp = WaspController::new(PolicyConfig::default()).with_metrics(hub.clone());
        run_controlled(&mut eng, &mut wasp, dur, 40.0);
        let snaps = hub.snapshots();
        let value = |family: &str, label: Option<(&str, &str)>| {
            snaps
                .iter()
                .find(|s| {
                    s.family == family
                        && label
                            .is_none_or(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
                })
                .map(|s| s.value)
        };
        let rounds = value("wasp_controller_rounds_total", None).unwrap();
        assert!(rounds >= 10.0, "rounds {rounds}");
        let actions = value("wasp_controller_actions_total", None).unwrap();
        assert!(actions >= 1.0, "actions {actions}");
        let p95 = value("wasp_slo_delay_seconds", Some(("quantile", "0.95"))).unwrap();
        assert!(p95 > 0.0, "p95 {p95}");
        // Gauges refresh over scrape rows too.
        assert!(hub.scrape_count() > 0);
    }

    #[test]
    fn controller_names() {
        assert_eq!(NoAdaptController.name(), "No Adapt");
        assert_eq!(DegradeController::new(10.0).name(), "Degrade");
        assert_eq!(WaspController::new(PolicyConfig::default()).name(), "WASP");
        assert_eq!(WaspController::reassign_only().name(), "Re-assign");
        assert_eq!(WaspController::scale_only().name(), "Scale");
        assert_eq!(WaspController::replan_only().name(), "Re-plan");
    }

    #[test]
    fn cooldowns_for_operators_outside_the_plan_are_pruned() {
        // After a plan switch the operator space is renumbered: any
        // cooldown for an op index beyond the new plan must go, as
        // must entries that simply expired.
        let mut wasp = WaspController::new(PolicyConfig::default());
        wasp.emergency_cooldowns.insert(OpId(1), 500.0); // live, in plan
        wasp.emergency_cooldowns.insert(OpId(2), 100.0); // expired
        wasp.emergency_cooldowns.insert(OpId(7), 1e9); // dropped by re-plan
        wasp.prune_emergency_cooldowns(200.0, 3);
        assert_eq!(
            wasp.emergency_cooldowns.keys().copied().collect::<Vec<_>>(),
            vec![OpId(1)]
        );
    }

    #[test]
    fn emergency_backoff_resets_after_successful_emergency_apply() {
        // dc1 hosts the whole pipeline and dies at t=100; the
        // controller enters the round with an inflated backoff (as if
        // earlier recovery attempts had failed) that has already
        // elapsed, so the round both attempts and succeeds — and the
        // success must reset the backoff to its initial value.
        let (net, edge, dc1, dc2) = three_site_world(50.0);
        let script = DynamicsScript::none().with_failure(wasp_netsim::dynamics::Failure {
            at: wasp_netsim::units::SimTime(100.0),
            restore_after: 500.0,
            site: Some(dc1),
        });
        let plan = linear_plan(edge, 1000.0, 5.0, 0.5);
        let mut eng = engine_with_script(net, plan, dc1, script);
        let mut wasp = WaspController::new(PolicyConfig::default());
        wasp.emergency_backoff_s = 160.0;
        wasp.emergency_next_attempt_s = 60.0; // already elapsed at t=120
        run_controlled(&mut eng, &mut wasp, 200.0, 40.0);
        assert!(
            eng.metrics()
                .actions()
                .iter()
                .any(|(_, l)| l.starts_with("emergency")),
            "no emergency action applied: {:?}",
            eng.metrics().actions()
        );
        assert_eq!(wasp.emergency_backoff_s, EMERGENCY_BACKOFF_INITIAL_S);
        let _ = dc2;
    }

    #[test]
    fn lossy_controller_detects_failure_via_heartbeats_and_recovers() {
        use wasp_controlplane::config::LossyControlConfig;
        // dc1 hosts the pipeline and dies at t=41 for 300 s. No
        // oracle events reach the controller: it must notice the
        // heartbeat silence, confirm the outage, and re-assign over
        // the fenced command channel (lossless here; loss rates are
        // exercised by the integration campaigns). By the t=80 round
        // — the first to see the outage at all — the silence is 39 s,
        // past the 2φ confirmation bar, so the emergency path fires
        // before the normal path can re-plan around the dead site on
        // rate evidence alone.
        let (net, edge, dc1, dc2) = three_site_world(50.0);
        let script = DynamicsScript::none().with_failure(wasp_netsim::dynamics::Failure {
            at: wasp_netsim::units::SimTime(41.0),
            restore_after: 300.0,
            site: Some(dc1),
        });
        let plan = linear_plan(edge, 1000.0, 5.0, 0.5);
        let mut eng = engine_with_script(net, plan, dc1, script);
        let cfg = LossyControlConfig {
            controller_site: Some(dc2),
            ..LossyControlConfig::default()
        };
        eng.enable_lossy_control(cfg.clone());
        let mut wasp = WaspController::new(PolicyConfig::default())
            .with_control_plane(ControlPlaneConfig::Lossy(cfg));
        run_controlled(&mut eng, &mut wasp, 600.0, 40.0);
        let stats = wasp.control_stats().unwrap().clone();
        assert!(stats.true_confirmations >= 1, "stats {stats:?}");
        assert_eq!(stats.false_positives, 0, "stats {stats:?}");
        assert!(stats.acked_applied >= 1, "stats {stats:?}");
        assert!(
            stats.detection_lag_quantile(1.0).unwrap() <= 90.0,
            "lags {:?}",
            stats.detection_lags_s
        );
        // The emergency re-assignment really reached the engine…
        assert!(
            eng.metrics()
                .actions()
                .iter()
                .any(|(_, l)| l.starts_with("emergency")),
            "actions {:?}",
            eng.metrics().actions()
        );
        // Delivery resumed after recovery.
        let m = eng.metrics();
        let del_late: f64 = m
            .ticks()
            .iter()
            .filter(|r| r.t > 500.0)
            .map(|r| r.delivered)
            .sum();
        assert!(del_late > 0.0, "no delivery after recovery");
    }
}
