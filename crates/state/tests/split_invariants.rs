//! Property suite for runtime key-range splitting (ISSUE 9).
//!
//! Splitting rewrites the weight vector mid-flight, so these
//! invariants are what keeps the rest of the stack honest: for
//! *arbitrary* split sequences over arbitrary configs, key mass is
//! conserved (weights sum to 1), `total_mb` and the dirty set survive
//! untouched, the key-range leaves stay a partition of `[0, 1)`, and
//! the whole process is a pure function of `(config, stream)` — the
//! same store always splits the same way, which is the property the
//! engine/optimizer agreement and the jobs-1/2/8 differential pins
//! rest on.
//!
//! Case count: 128 by default, raised in CI via `PROPTEST_CASES`
//! (the `split-invariants` job runs 512).

use proptest::prelude::*;
use wasp_state::{PartitionConfig, StateStore};

/// `PROPTEST_CASES` override (the vendored proptest only honours the
/// in-config count, so the env var is resolved here).
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

fn config(partitions: u32, zipf_exponent: f64, seed: u64) -> PartitionConfig {
    PartitionConfig {
        partitions,
        zipf_exponent,
        seed,
        ..PartitionConfig::default()
    }
}

/// Sorted-range check: the leaves partition `[0, 1)` exactly —
/// pairwise disjoint, gap-free, covering the whole key space.
fn assert_ranges_partition_key_space(store: &StateStore) -> Result<(), String> {
    let mut ranges: Vec<(f64, f64)> = store.ranges().to_vec();
    ranges.sort_by(|a, b| a.0.total_cmp(&b.0));
    prop_assert_eq!(ranges[0].0, 0.0);
    prop_assert_eq!(ranges[ranges.len() - 1].1, 1.0);
    for w in ranges.windows(2) {
        prop_assert!(w[0].0 < w[0].1, "empty range {:?}", w[0]);
        prop_assert!(
            w[0].1 == w[1].0,
            "gap or overlap between {:?} and {:?}",
            w[0],
            w[1]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arbitrary split sequences conserve key mass, total state size
    /// and the dirty set, and never break the range partition.
    #[test]
    fn arbitrary_split_sequences_conserve_mass(
        n_parts in 1u32..32,
        zipf in 0.0f64..2.5,
        seed in 0u64..u64::MAX,
        stream in 0u64..u64::MAX,
        total in 0.5f64..500.0,
        writes in 0.0f64..50.0,
        picks in proptest::collection::vec(0usize..4096, 0..40),
    ) {
        let cfg = config(n_parts, zipf, seed);
        let mut s = StateStore::new(&cfg, stream);
        s.set_total_mb(total);
        s.record_writes(writes);
        // Dirty mass before, observed through a probe clone (the
        // checkpoint drains it).
        let dirty0 = s.clone().take_checkpoint().delta_mb;
        for &p in &picks {
            let n = s.partitions();
            let _ = s.split(p % n);
        }
        let sum: f64 = s.weights().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "weights sum to {sum}");
        prop_assert!(s.weights().iter().all(|&w| w >= 0.0));
        prop_assert_eq!(s.total_mb(), total, "total_mb must not move");
        let dirty1 = s.clone().take_checkpoint().delta_mb;
        prop_assert!(
            (dirty1 - dirty0).abs() < 1e-9 * dirty0.max(1.0),
            "dirty mass {dirty1} vs {dirty0} across splits"
        );
        assert_ranges_partition_key_space(&s)?;
        // Lineage always resolves to an original hash partition.
        let n0 = n_parts.max(1);
        for i in 0..s.partitions() as u32 {
            prop_assert!(s.origin_of(i) < n0, "origin of {i} out of range");
        }
    }

    /// The hot-partition detector bounds every leaf at the threshold,
    /// replays identically on an identical store (deterministic split
    /// order), and is idempotent.
    #[test]
    fn split_hot_bounds_leaves_deterministically(
        n_parts in 1u32..32,
        zipf in 0.0f64..2.0,
        seed in 0u64..u64::MAX,
        stream in 0u64..u64::MAX,
        th in 0.02f64..0.5,
    ) {
        let cfg = config(n_parts, zipf, seed);
        let mut a = StateStore::new(&cfg, stream);
        a.set_total_mb(100.0);
        let mut b = a.clone();
        let ea = a.split_hot(th);
        let eb = b.split_hot(th);
        prop_assert_eq!(&ea, &eb, "split order must be deterministic");
        prop_assert_eq!(a.weights(), b.weights());
        prop_assert_eq!(a.ranges(), b.ranges());
        let max = a.weights().iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(max <= th + 1e-12, "leaf {max} above threshold {th}");
        prop_assert!(a.split_hot(th).is_empty(), "detector must converge");
        // Fresh-construction replay: a brand-new store with the same
        // (config, stream) splits the same way — the property the
        // optimizer's plan-time estimate relies on.
        let mut c = StateStore::new(&cfg, stream);
        c.set_total_mb(100.0);
        prop_assert_eq!(&c.split_hot(th), &ea);
    }

    /// Splitting a dirty store keeps the dirty *fraction* intact:
    /// both halves of a dirty partition stay dirty with the parent's
    /// combined weight, so redo-replay scope neither grows nor
    /// shrinks.
    #[test]
    fn dirty_fraction_survives_split_hot(
        n_parts in 1u32..32,
        zipf in 0.0f64..2.0,
        seed in 0u64..u64::MAX,
        stream in 0u64..u64::MAX,
        th in 0.02f64..0.5,
        writes in 0.1f64..100.0,
    ) {
        let cfg = config(n_parts, zipf, seed);
        let mut s = StateStore::new(&cfg, stream);
        s.set_total_mb(100.0);
        s.record_writes(writes);
        let frac0 = s.dirty_weight_fraction();
        s.split_hot(th);
        let frac1 = s.dirty_weight_fraction();
        prop_assert!(
            (frac0 - frac1).abs() < 1e-9,
            "dirty fraction moved across splits: {frac0} -> {frac1}"
        );
    }
}
