//! Telemetry integration: golden byte-stability of the JSONL export
//! and well-formedness of the Chrome trace, over a real §8.4 run.
//!
//! The determinism contract (DESIGN.md §10): every timestamp is
//! sim-time, so a fixed (scenario, seed, dt) produces a byte-identical
//! event log — no scrubbing or normalization needed before diffing.

use serde::Deserialize;
use wasp_telemetry::LogEntry;
use wasp_workloads::prelude::*;

fn record_8_4(seed: u64) -> Recording {
    record_8_4_jobs(seed, 1)
}

fn record_8_4_jobs(seed: u64, jobs: usize) -> Recording {
    let (tel, rec) = Telemetry::recording();
    let cfg = ScenarioConfig {
        seed,
        dt: 1.0,
        jobs,
        telemetry: tel,
        ..ScenarioConfig::default()
    };
    run_section_8_4(QueryKind::Advertising, ControllerKind::Wasp, &cfg);
    rec.recording()
}

#[test]
fn jsonl_log_is_byte_stable_across_runs() {
    let first = to_jsonl(&record_8_4(4)).unwrap();
    let second = to_jsonl(&record_8_4(4)).unwrap();
    assert!(!first.is_empty(), "an instrumented run must record events");
    assert_eq!(
        first, second,
        "same (scenario, seed, dt) must be byte-identical"
    );

    // And the log round-trips: every line parses back to the entry
    // that produced it.
    let reparsed: Vec<LogEntry> = first
        .lines()
        .map(|l| serde_json::from_str(l).expect("every JSONL line parses"))
        .collect();
    assert_eq!(reparsed, record_8_4(4).log);

    // A different seed is a different log (the trace reflects the run,
    // not just the instrumentation points).
    let other = to_jsonl(&record_8_4(5)).unwrap();
    assert_ne!(first, other);
}

// Test-local mirror of the Chrome trace JSON. The vendored serde
// ignores unknown keys and `default`s missing ones, so optional
// per-phase fields (`dur`, `name`) can be plain `Option`s.
#[allow(non_snake_case)]
#[derive(Deserialize)]
struct ChromeTrace {
    displayTimeUnit: String,
    traceEvents: Vec<TraceEvent>,
}

#[derive(Deserialize)]
struct TraceEvent {
    #[serde(default)]
    name: Option<String>,
    ph: String,
    ts: u64,
    tid: u64,
    #[serde(default)]
    dur: Option<u64>,
}

/// Golden-file checks shared by the sequential and `--jobs 8` trace
/// tests: valid JSON, monotonic timestamps, balanced B/E pairs on the
/// control thread, durations on every complete event. Returns the
/// maximum control-span nesting depth.
fn check_chrome_trace(text: &str) -> i64 {
    let trace: ChromeTrace = serde_json::from_str(text).expect("trace is valid JSON");
    assert_eq!(trace.displayTimeUnit, "ms");
    assert!(!trace.traceEvents.is_empty());

    let mut last_ts = 0u64;
    let mut depth = 0i64;
    let mut max_depth = 0i64;
    for ev in &trace.traceEvents {
        assert!(ev.ts >= last_ts, "timestamps must be monotonic");
        last_ts = ev.ts;
        match ev.ph.as_str() {
            "B" => {
                assert_eq!(ev.tid, 1, "control spans live on the control thread");
                assert!(ev.name.is_some(), "begin events are named");
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            "E" => {
                depth -= 1;
                assert!(depth >= 0, "span end without a begin");
            }
            "X" => {
                assert_eq!(ev.tid, 2, "engine spans live on the engine thread");
                assert!(ev.dur.is_some(), "complete events carry a duration");
            }
            "i" => assert!(ev.name.is_some(), "instants are named"),
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(depth, 0, "every control span must be closed");
    max_depth
}

#[test]
fn chrome_trace_is_well_formed() {
    let rec = record_8_4(4);
    let max_depth = check_chrome_trace(&to_chrome_trace(&rec).unwrap());
    assert!(
        max_depth >= 4,
        "span hierarchy must nest at least 4 deep, got {max_depth}"
    );
    assert!(rec.max_span_depth() >= 4);
}

/// The same golden checks on a parallel engine run, plus byte-identity
/// back to the sequential trace: `--jobs 8` may change the schedule
/// but never the recorded events.
#[test]
fn chrome_trace_at_jobs_8_is_well_formed_and_identical() {
    let parallel = to_chrome_trace(&record_8_4_jobs(4, 8)).unwrap();
    check_chrome_trace(&parallel);
    let sequential = to_chrome_trace(&record_8_4_jobs(4, 1)).unwrap();
    assert_eq!(
        sequential, parallel,
        "the chrome trace must be byte-identical across engine parallelism"
    );
}

/// Golden-file check of the Prometheus text exposition over a real
/// run (with x-ray attribution on, so the per-component histogram
/// families are covered too): every family declares `# HELP` then
/// `# TYPE` exactly once, every sample line belongs to a declared
/// family, and values parse.
#[test]
fn prometheus_exposition_is_well_formed() {
    let hub = MetricsHub::recording(10.0);
    let cfg = ScenarioConfig {
        seed: 4,
        dt: 1.0,
        metrics: hub.clone(),
        xray: Some(XRAY_DEFAULT_WINDOW_S),
        ..ScenarioConfig::default()
    };
    run_section_8_4(QueryKind::Advertising, ControllerKind::Wasp, &cfg);
    let text = hub.render_prometheus();
    assert!(!text.is_empty());

    let mut families: Vec<String> = Vec::new(); // declaration order
    let mut lines = text.lines().peekable();
    let mut samples = 0usize;
    while let Some(line) = lines.next() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (family, help) = rest.split_once(' ').expect("HELP carries family and text");
            assert!(!help.is_empty(), "{family}: HELP text must not be empty");
            assert!(
                !families.iter().any(|f| f == family),
                "duplicate family declaration: {family}"
            );
            let type_line = lines.next().expect("HELP must be followed by TYPE");
            let trest = type_line
                .strip_prefix("# TYPE ")
                .expect("HELP must be followed by TYPE");
            let (tfam, kind) = trest.split_once(' ').expect("TYPE carries family and kind");
            assert_eq!(tfam, family, "TYPE must name the family its HELP declared");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "{family}: unknown type {kind}"
            );
            families.push(family.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "stray comment line: {line}");
        if line.is_empty() {
            continue;
        }
        // `family{labels} value` or `family value`; histogram samples
        // append `_bucket`/`_sum`/`_count` to the declared family.
        let name_end = line.find(['{', ' ']).expect("sample has a name");
        let name = &line[..name_end];
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .unwrap_or(name);
        assert!(
            families.iter().any(|f| f == name || f == base),
            "sample {name} has no declared family"
        );
        let value = line.rsplit(' ').next().expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&value),
            "unparseable sample value {value:?} in {line:?}"
        );
        samples += 1;
    }
    assert!(samples > 0, "exposition must carry sample lines");
    // The x-ray run must expose the per-component delay family.
    assert!(
        families.iter().any(|f| f == "wasp_xray_component_seconds"),
        "x-ray component family missing from exposition"
    );
}

#[test]
fn report_shows_candidates_and_rejections() {
    let rec = record_8_4(4);
    let report = render_report(&rec, "integration");
    assert!(
        report.contains("monitor-round"),
        "report lists monitor rounds"
    );
    assert!(
        report.contains("considered"),
        "the audit trail names candidate actions"
    );
    assert!(
        report.contains("REJECTED"),
        "the audit trail explains why candidates were rejected"
    );
    assert!(report.contains("max span depth"));
}
