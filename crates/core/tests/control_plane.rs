//! Lossy-control-plane campaigns: the WASP controller driven purely
//! by heartbeat silence and a fenced, retried command channel — no
//! oracle failure events ever reach a decision.
//!
//! Per campaign the harness asserts:
//!
//! * **bounded recovery** — after every crash outage ends, delivery
//!   returns to ≥ half the nominal rate within the same 240 s window
//!   the oracle-mode chaos campaigns use (`tests/chaos.rs`), even
//!   though the controller has to *infer* the failure and its
//!   commands can be dropped, delayed and reordered;
//! * **epoch fencing** (from the decision audit trail) — no command
//!   carrying a stale epoch is ever applied, applied epochs are
//!   monotone, and a stale-rejected command id is never applied by a
//!   later redelivery;
//! * **detector accuracy** — across control-message loss rates the
//!   detector confirms every sufficiently long outage (no false
//!   negatives), never confirms a healthy site at zero loss, and its
//!   detection-lag p95 stays under the analytic bound (confirmation
//!   needs ~30 s of silence, observed at 40 s monitor granularity,
//!   with EWMA slack under loss: ≤ 90 s).

use std::collections::BTreeSet;

use wasp_core::controlplane::ControlPlaneStats;
use wasp_core::prelude::*;
use wasp_core::test_util::linear_plan;
use wasp_netsim::chaos::{ChaosConfig, ChaosEvent, ChaosInjector};
use wasp_netsim::dynamics::DynamicsScript;
use wasp_netsim::network::Network;
use wasp_netsim::site::{SiteId, SiteKind};
use wasp_netsim::topology::TopologyBuilder;
use wasp_netsim::units::{Mbps, Millis};
use wasp_streamsim::engine::{Engine, EngineConfig};
use wasp_streamsim::physical::PhysicalPlan;
use wasp_telemetry::{Event as TelEvent, Recording, Telemetry};

const MONITOR_INTERVAL_S: f64 = 40.0;
const HORIZON_S: f64 = 900.0;
/// Nominal source rate × end-to-end selectivity.
const NOMINAL_DELIVERY_RATE: f64 = 1000.0 * 0.5;

/// Same world as `tests/chaos.rs`: an edge holding the source plus
/// three DCs. Faults only hit the DCs; the controller sits at the
/// edge, so its inbound heartbeats and outbound commands cross the
/// lossy WAN but the controller itself never dies.
fn chaos_world() -> (Network, SiteId, Vec<SiteId>) {
    let mut b = TopologyBuilder::new();
    let edge = b.add_site("edge", SiteKind::Edge, 4);
    let dc1 = b.add_site("dc1", SiteKind::DataCenter, 8);
    let dc2 = b.add_site("dc2", SiteKind::DataCenter, 8);
    let dc3 = b.add_site("dc3", SiteKind::DataCenter, 8);
    b.set_all_links(Mbps(50.0), Millis(20.0));
    (Network::new(b.build().unwrap()), edge, vec![dc1, dc2, dc3])
}

fn chaos_links(edge: SiteId, dcs: &[SiteId]) -> Vec<(SiteId, SiteId)> {
    let mut links = Vec::new();
    for &d in dcs {
        links.push((edge, d));
    }
    for &a in dcs {
        for &b in dcs {
            if a != b {
                links.push((a, b));
            }
        }
    }
    links
}

/// Crash-only fault mix with outages long enough (≥ 120 s) that the
/// detector must confirm each one: confirmation needs ~30 s of
/// silence seen at 40 s round granularity, i.e. ≤ ~80 s after the
/// crash.
fn crash_chaos(crashes: u32) -> ChaosConfig {
    ChaosConfig {
        crashes,
        crash_outage_s: (120.0, 180.0),
        flapping_sites: 0,
        link_blackouts: 0,
        stragglers: 0,
        ..ChaosConfig::full(HORIZON_S)
    }
}

fn lossy_cfg(loss: f64, seed: u64, controller_site: SiteId) -> LossyControlConfig {
    LossyControlConfig {
        loss,
        heartbeat_period_s: 5.0,
        phi_threshold: 3.0,
        seed: seed.wrapping_mul(0x9e37_79b9).wrapping_add(0x5eed),
        controller_site: Some(controller_site),
        ..LossyControlConfig::default()
    }
}

struct LossyCampaign {
    events: Vec<ChaosEvent>,
    engine: Engine,
    stats: ControlPlaneStats,
    recording: Recording,
}

/// One seeded campaign: chaos timeline on the data plane, loss rate on
/// the control plane, WASP deciding only from heartbeats and acks.
fn run_lossy_campaign(seed: u64, loss: f64, cfg: ChaosConfig) -> LossyCampaign {
    let (net, edge, dcs) = chaos_world();
    let links = chaos_links(edge, &dcs);
    let (script, events) =
        ChaosInjector::with_config(seed, cfg).compile(DynamicsScript::none(), &dcs, &links);
    let plan = linear_plan(edge, 1000.0, 400.0, 0.5);
    let physical = PhysicalPlan::initial(&plan, dcs[0]);
    let mut engine = Engine::new(net, script, plan, physical, EngineConfig::default()).unwrap();
    // Two compute workers: the lossy control plane must be exactly as
    // jobs-independent as the rest of the engine (results are
    // bit-identical for every value; see the differential suite).
    engine.set_parallelism(2);
    let (tel, handle) = Telemetry::recording();
    engine.set_telemetry(tel.clone());
    let lcfg = lossy_cfg(loss, seed, edge);
    engine.enable_lossy_control(lcfg.clone());
    let mut wasp = WaspController::new(PolicyConfig::default())
        .with_control_plane(ControlPlaneConfig::Lossy(lcfg))
        .with_telemetry(tel);
    run_controlled(&mut engine, &mut wasp, HORIZON_S, MONITOR_INTERVAL_S);
    let stats = wasp.control_stats().expect("lossy mode").clone();
    LossyCampaign {
        events,
        engine,
        stats,
        recording: handle.recording(),
    }
}

/// The fencing audit, replayed from the decision audit trail: stale
/// epochs are never applied, applied epochs are monotone, and a
/// stale-rejected id can never be applied by a later redelivery.
fn check_epoch_audit(seed: u64, rec: &Recording) -> (usize, usize) {
    let mut last_applied_epoch = 0u64;
    let mut stale_ids: BTreeSet<u64> = BTreeSet::new();
    let mut applied = 0usize;
    for (t, _, ev) in rec.events() {
        match ev {
            TelEvent::ControlCommandDelivered {
                id,
                epoch,
                engine_epoch,
                applied: true,
                ..
            } => {
                applied += 1;
                assert!(
                    epoch >= engine_epoch,
                    "seed {seed}: t={t}: applied command #{id} with epoch {epoch} \
                     behind engine epoch {engine_epoch}"
                );
                assert!(
                    *epoch >= last_applied_epoch,
                    "seed {seed}: t={t}: applied epochs regressed ({epoch} after \
                     {last_applied_epoch})"
                );
                last_applied_epoch = *epoch;
                assert!(
                    !stale_ids.contains(id),
                    "seed {seed}: t={t}: command #{id} was stale-rejected earlier \
                     but applied now"
                );
            }
            TelEvent::StaleEpochRejected {
                id,
                cmd_epoch,
                engine_epoch,
                ..
            } => {
                assert!(
                    cmd_epoch < engine_epoch,
                    "seed {seed}: t={t}: rejection of #{id} was not actually stale"
                );
                stale_ids.insert(*id);
            }
            _ => {}
        }
    }
    (applied, stale_ids.len())
}

/// Bounded recovery, identical to the oracle-mode bound in
/// `tests/chaos.rs`: within 240 s of each crash outage ending,
/// delivery is back to ≥ 50% of nominal sustained over 30 s.
fn check_recovery(seed: u64, result: &LossyCampaign) {
    let m = result.engine.metrics();
    for e in &result.events {
        let ChaosEvent::SiteCrash { at, outage_s, site } = e else {
            continue;
        };
        let end = at + outage_s;
        if end + 270.0 > HORIZON_S {
            continue;
        }
        let recovered = (0..)
            .map(|k| end + k as f64 * 10.0)
            .take_while(|w0| w0 + 30.0 <= end + 270.0)
            .any(|w0| {
                let delivered: f64 = m
                    .ticks()
                    .iter()
                    .filter(|r| r.t > w0 && r.t <= w0 + 30.0)
                    .map(|r| r.delivered)
                    .sum();
                delivered >= 0.5 * NOMINAL_DELIVERY_RATE * 30.0
            });
        assert!(
            recovered,
            "seed {seed}: no recovery within 240 s of the crash of {site:?} ending at {end}"
        );
    }
}

/// The acceptance campaign: 20 seeds, 10% control-message loss,
/// heartbeat detection only. Recovery stays inside the oracle-mode
/// bound and the fence holds on every seed.
#[test]
fn twenty_seed_lossy_campaign_recovers_within_oracle_bound() {
    let mut total_applied = 0usize;
    for seed in 0..20 {
        let result = run_lossy_campaign(seed, 0.10, crash_chaos(1));
        check_recovery(seed, &result);
        let (applied, _) = check_epoch_audit(seed, &result.recording);
        total_applied += applied;
        assert!(
            result.stats.true_confirmations >= 1,
            "seed {seed}: the crash was never confirmed: {:?}",
            result.stats
        );
        // A crash of an idle DC needs no command; but whenever the
        // controller did decide, at least one send must have made it
        // through retries to the engine.
        assert!(
            result.stats.enqueued == 0 || applied >= 1,
            "seed {seed}: {} commands enqueued, none survived the lossy channel",
            result.stats.enqueued
        );
        assert_eq!(
            result.engine.stale_rejections() as usize,
            result
                .recording
                .events()
                .filter(|(_, _, ev)| matches!(ev, TelEvent::StaleEpochRejected { .. }))
                .count(),
            "seed {seed}: engine stale counter diverges from the audit trail"
        );
    }
    assert!(
        total_applied >= 10,
        "the campaign barely exercised the command channel ({total_applied} applies over 20 seeds)"
    );
}

/// Detector accuracy across control-message loss rates. Loss cannot
/// delay confirmation of a genuinely dead site (silence is silence),
/// but it inflates the EWMA heartbeat interval, so the lag bound has
/// slack: ≤ 90 s against the 30 s confirmation bar + 40 s round
/// granularity.
#[test]
fn detector_accuracy_across_loss_rates() {
    for &loss in &[0.0, 0.05, 0.10] {
        let mut all_lags: Vec<f64> = Vec::new();
        let mut fp = 0u64;
        let mut fn_ = 0u64;
        let mut confirmations = 0u64;
        for seed in 0..5 {
            let result = run_lossy_campaign(seed, loss, crash_chaos(2));
            fp += result.stats.false_positives;
            fn_ += result.stats.false_negatives;
            confirmations += result.stats.true_confirmations;
            all_lags.extend_from_slice(&result.stats.detection_lags_s);
        }
        assert!(
            confirmations >= 5,
            "loss {loss}: too few confirmations ({confirmations})"
        );
        // Every ≥120 s outage must be confirmed before it heals.
        assert_eq!(fn_, 0, "loss {loss}: {fn_} outages were never confirmed");
        if loss == 0.0 {
            assert_eq!(fp, 0, "loss {loss}: confirmed {fp} healthy sites");
        }
        all_lags.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p95 = all_lags[((all_lags.len() as f64 - 1.0) * 0.95).round() as usize];
        assert!(p95 <= 90.0, "loss {loss}: detection-lag p95 {p95} s");
    }
}

/// A scheduled control partition between the controller and a healthy
/// site silences its heartbeats: the detector must (wrongly, from the
/// truth ledger's point of view) confirm it — that is what a false
/// positive *is* — and clear it once the partition heals, without the
/// data plane ever degrading.
#[test]
fn control_partition_causes_false_positive_then_clears() {
    use wasp_netsim::dynamics::ControlPartition;
    use wasp_netsim::units::SimTime;
    let (net, edge, dcs) = chaos_world();
    // Partition edge (controller) ↔ dc1 (hosting the pipeline) for
    // 200 s: long enough to confirm, short enough to heal in-run.
    let script = DynamicsScript::none().with_control_partition(ControlPartition {
        a: edge,
        b: dcs[0],
        at: SimTime(100.0),
        duration_s: 200.0,
    });
    let plan = linear_plan(edge, 1000.0, 400.0, 0.5);
    let physical = PhysicalPlan::initial(&plan, dcs[0]);
    let mut engine = Engine::new(net, script, plan, physical, EngineConfig::default()).unwrap();
    let lcfg = lossy_cfg(0.0, 7, edge);
    engine.enable_lossy_control(lcfg.clone());
    let mut wasp = WaspController::new(PolicyConfig::default())
        .with_control_plane(ControlPlaneConfig::Lossy(lcfg));
    run_controlled(&mut engine, &mut wasp, 600.0, MONITOR_INTERVAL_S);
    let stats = wasp.control_stats().unwrap();
    assert!(
        stats.false_positives >= 1,
        "partition should read as a failure: {stats:?}"
    );
    assert_eq!(stats.false_negatives, 0, "{stats:?}");
    // The data plane never degraded: conservation holds tightly.
    let m = engine.metrics();
    let ratio = m.total_delivered() / (m.total_generated() * 0.5);
    assert!(
        ratio > 0.9,
        "data plane was hurt by a control partition: {ratio}"
    );
}

/// CI sweep (feature-gated): 3 disjoint seeds × 2 loss rates.
#[cfg(feature = "control-chaos")]
#[test]
fn control_chaos_sweep() {
    for &loss in &[0.05, 0.10] {
        for seed in 200..203 {
            let result = run_lossy_campaign(seed, loss, crash_chaos(1));
            check_recovery(seed, &result);
            check_epoch_audit(seed, &result.recording);
        }
    }
}

mod stale_epoch_property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Property: whatever the loss rate, seed and crash timing, no
        /// stale-epoch command is ever applied (checked against the
        /// decision audit trail, not the engine's own counter).
        #[test]
        fn no_stale_epoch_command_is_ever_applied(
            seed in 0u64..1000,
            loss in 0.0f64..0.3,
            crash_at in 60.0f64..200.0,
            outage_s in 60.0f64..200.0,
        ) {
            use wasp_netsim::dynamics::Failure;
            use wasp_netsim::units::SimTime;
            let (net, edge, dcs) = chaos_world();
            let script = DynamicsScript::none().with_failure(Failure {
                at: SimTime(crash_at),
                restore_after: outage_s,
                site: Some(dcs[0]),
            });
            let plan = linear_plan(edge, 1000.0, 400.0, 0.5);
            let physical = PhysicalPlan::initial(&plan, dcs[0]);
            let mut engine =
                Engine::new(net, script, plan, physical, EngineConfig::default()).unwrap();
            let (tel, handle) = Telemetry::recording();
            engine.set_telemetry(tel.clone());
            let lcfg = lossy_cfg(loss, seed, edge);
            engine.enable_lossy_control(lcfg.clone());
            let mut wasp = WaspController::new(PolicyConfig::default())
                .with_control_plane(ControlPlaneConfig::Lossy(lcfg))
                .with_telemetry(tel);
            run_controlled(&mut engine, &mut wasp, 500.0, MONITOR_INTERVAL_S);
            check_epoch_audit(seed, &handle.recording());
        }
    }
}
