//! Per-command retry state machine.
//!
//! Generalizes the controller's emergency exponential backoff (one
//! global gate) into an independent retry track per in-flight command:
//! each tracked command has its own attempt counter and deadline, the
//! backoff doubles on every nack/timeout, and the command is abandoned
//! after `max_attempts` deliveries.

use std::collections::BTreeMap;

use crate::channel::CommandEnvelope;

/// Retry parameters. Defaults mirror the emergency backoff constants
/// in `wasp-core` (5 s initial, 320 s cap).
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Seconds to wait for an ack before re-sending.
    pub ack_timeout_s: f64,
    /// First backoff delay applied after a failure.
    pub backoff_initial_s: f64,
    /// Backoff cap.
    pub backoff_max_s: f64,
    /// Total delivery attempts (including the first) before giving up.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            ack_timeout_s: 30.0,
            backoff_initial_s: 5.0,
            backoff_max_s: 320.0,
            max_attempts: 8,
        }
    }
}

/// One tracked in-flight command.
#[derive(Debug, Clone)]
struct Track<C> {
    env: CommandEnvelope<C>,
    attempts: u32,
    backoff_s: f64,
    deadline_s: f64,
}

/// What [`RetryQueue::poll`] decided about the commands due at `now`.
#[derive(Debug, Clone)]
pub struct RetryDecision<C> {
    /// Commands to re-send now (attempt counter already advanced,
    /// `sent_s` already stamped). The `u32` is the new attempt number.
    pub retry: Vec<(CommandEnvelope<C>, u32)>,
    /// Commands abandoned after exhausting `max_attempts`. The `u32`
    /// is the total number of attempts made.
    pub expired: Vec<(CommandEnvelope<C>, u32)>,
}

/// Tracks every unacked command and schedules re-sends.
#[derive(Debug, Clone)]
pub struct RetryQueue<C> {
    policy: RetryPolicy,
    tracks: BTreeMap<u64, Track<C>>,
}

impl<C: Clone> RetryQueue<C> {
    /// Build an empty queue with the given policy.
    pub fn new(policy: RetryPolicy) -> Self {
        RetryQueue {
            policy,
            tracks: BTreeMap::new(),
        }
    }

    /// Start tracking a freshly submitted command (attempt 1).
    pub fn track(&mut self, env: CommandEnvelope<C>, now: f64) {
        let deadline = now + self.policy.ack_timeout_s;
        self.tracks.insert(
            env.id,
            Track {
                env,
                attempts: 1,
                backoff_s: self.policy.backoff_initial_s,
                deadline_s: deadline,
            },
        );
    }

    /// A final ack arrived: stop tracking. Returns the envelope if it
    /// was still tracked.
    pub fn resolve(&mut self, id: u64) -> Option<CommandEnvelope<C>> {
        self.tracks.remove(&id).map(|t| t.env)
    }

    /// A non-final (rejection) ack arrived: double the backoff and
    /// bring the retry deadline forward to `now + backoff` so the
    /// command is re-sent on the backoff schedule rather than waiting
    /// out the full ack timeout.
    pub fn nack(&mut self, id: u64, now: f64) {
        let max = self.policy.backoff_max_s;
        if let Some(t) = self.tracks.get_mut(&id) {
            t.deadline_s = now + t.backoff_s;
            t.backoff_s = (t.backoff_s * 2.0).min(max);
        }
    }

    /// Collect the commands whose deadline passed: ones with attempts
    /// left are returned for re-send (deadline pushed out by
    /// `max(ack_timeout, backoff)`), the rest are expired.
    pub fn poll(&mut self, now: f64) -> RetryDecision<C> {
        let mut decision = RetryDecision {
            retry: Vec::new(),
            expired: Vec::new(),
        };
        let due: Vec<u64> = self
            .tracks
            .iter()
            .filter(|(_, t)| t.deadline_s <= now)
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            let track = self.tracks.get_mut(&id).expect("due id present");
            if track.attempts >= self.policy.max_attempts {
                let t = self.tracks.remove(&id).expect("due id present");
                decision.expired.push((t.env, t.attempts));
                continue;
            }
            track.attempts += 1;
            track.env.sent_s = now;
            track.deadline_s = now + self.policy.ack_timeout_s.max(track.backoff_s);
            track.backoff_s = (track.backoff_s * 2.0).min(self.policy.backoff_max_s);
            decision.retry.push((track.env.clone(), track.attempts));
        }
        decision
    }

    /// Envelopes currently awaiting an ack, in id order.
    pub fn pending(&self) -> impl Iterator<Item = &CommandEnvelope<C>> {
        self.tracks.values().map(|t| &t.env)
    }

    /// Number of commands awaiting an ack.
    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    /// Stop tracking a command without resolving it (e.g. its premise
    /// no longer holds after a plan switch).
    pub fn abandon(&mut self, id: u64) -> Option<CommandEnvelope<C>> {
        self.tracks.remove(&id).map(|t| t.env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(id: u64) -> CommandEnvelope<&'static str> {
        CommandEnvelope {
            id,
            epoch: 1,
            plan_version: 0,
            label: "test".into(),
            sent_s: 0.0,
            payload: "cmd",
        }
    }

    fn queue() -> RetryQueue<&'static str> {
        RetryQueue::new(RetryPolicy {
            ack_timeout_s: 30.0,
            backoff_initial_s: 5.0,
            backoff_max_s: 320.0,
            max_attempts: 3,
        })
    }

    #[test]
    fn ack_before_timeout_resolves() {
        let mut q = queue();
        q.track(env(1), 0.0);
        assert_eq!(q.len(), 1);
        assert!(q.resolve(1).is_some());
        let d = q.poll(1000.0);
        assert!(d.retry.is_empty() && d.expired.is_empty());
    }

    #[test]
    fn timeout_triggers_retry_then_expiry() {
        let mut q = queue();
        q.track(env(1), 0.0);
        assert!(q.poll(29.0).retry.is_empty(), "not yet due");
        let d = q.poll(30.0);
        assert_eq!(d.retry.len(), 1);
        assert_eq!(d.retry[0].1, 2);
        assert_eq!(d.retry[0].0.sent_s, 30.0);
        let d = q.poll(60.0);
        assert_eq!(d.retry.len(), 1);
        assert_eq!(d.retry[0].1, 3);
        // Attempts exhausted: the next deadline expires the command.
        let d = q.poll(90.0);
        assert!(d.retry.is_empty());
        assert_eq!(d.expired.len(), 1);
        assert_eq!(d.expired[0].1, 3);
        assert!(q.is_empty());
    }

    #[test]
    fn nack_reschedules_on_backoff_and_doubles() {
        let mut q = queue();
        q.track(env(1), 0.0);
        q.nack(1, 10.0);
        // Backoff was 5 s: due at 15, well before the 30 s ack timeout.
        let d = q.poll(15.0);
        assert_eq!(d.retry.len(), 1);
        q.nack(1, 16.0);
        // Backoff doubled twice (retry + nack): now 20 s, due at 36.
        assert!(q.poll(35.0).retry.is_empty());
        let d = q.poll(36.0);
        assert_eq!(d.retry.len(), 1);
        assert_eq!(d.retry[0].1, 3);
    }

    #[test]
    fn backoff_caps_at_max() {
        let mut q = RetryQueue::new(RetryPolicy {
            ack_timeout_s: 1.0,
            backoff_initial_s: 5.0,
            backoff_max_s: 20.0,
            max_attempts: 100,
        });
        q.track(env(1), 0.0);
        let mut now = 0.0;
        for _ in 0..10 {
            now += 1000.0;
            let d = q.poll(now);
            assert_eq!(d.retry.len(), 1);
        }
        // Deadline spacing is bounded by max(ack_timeout, backoff cap).
        let d = q.poll(now + 20.0);
        assert_eq!(d.retry.len(), 1);
    }

    #[test]
    fn abandon_drops_tracking() {
        let mut q = queue();
        q.track(env(4), 0.0);
        assert!(q.abandon(4).is_some());
        assert!(q.poll(1000.0).retry.is_empty());
        assert!(q.is_empty());
    }
}
