//! Multi-stream windowed join queries and the join-order replanner —
//! the §4.3 (Fig. 5) scenario.
//!
//! A [`JoinQuery`] describes N geo-distributed streams joined by a
//! commutative windowed hash join. Any binary [`JoinTree`] over the
//! streams is a valid logical plan (the record-level proof lives in
//! `wasp_streamsim::exact`), so the [`JoinOrderReplanner`] can switch
//! trees at runtime when the WAN shifts — subject to the common-
//! sub-plan rule for joins with long-lived state.

use crate::queries::DEFAULT_RATE;
use wasp_core::estimator::WorkloadEstimate;
use wasp_core::policy::PolicyConfig;
use wasp_core::replanner::QueryReplanner;
use wasp_netsim::network::Network;
use wasp_netsim::site::SiteId;
use wasp_netsim::units::{MegaBytes, SimTime};
use wasp_optimizer::replan::{JoinTree, ReplanProblem, StreamLeaf};
use wasp_streamsim::engine::{PlanSwitch, Transfer};
use wasp_streamsim::ids::OpId;
use wasp_streamsim::metrics::QuerySnapshot;
use wasp_streamsim::operator::{OperatorKind, OperatorSpec, StateModel};
use wasp_streamsim::physical::{PhysicalPlan, Placement};
use wasp_streamsim::plan::{LogicalPlan, LogicalPlanBuilder};

/// One input stream of a join query.
#[derive(Debug, Clone)]
pub struct JoinStream {
    /// Stream name (`"A"`, `"B"`, …).
    pub name: String,
    /// Origin site.
    pub site: SiteId,
    /// Base rate, events/s.
    pub rate: f64,
    /// Record size, bytes.
    pub event_bytes: f64,
}

impl JoinStream {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, site: SiteId, rate: f64, event_bytes: f64) -> JoinStream {
        JoinStream {
            name: name.into(),
            site,
            rate,
            event_bytes,
        }
    }
}

/// A full N-way windowed join query.
#[derive(Debug, Clone)]
pub struct JoinQuery {
    /// The input streams (2–16).
    pub streams: Vec<JoinStream>,
    /// Tumbling-window length of every join.
    pub window_s: f64,
    /// Join selectivity: output events = σ × (sum of input events).
    pub join_selectivity: f64,
    /// Result sink site.
    pub sink: SiteId,
    /// Leaf-index sets whose joins hold long-lived state and must
    /// appear as exact subtrees in every alternative plan (§4.3).
    pub required_subtrees: Vec<Vec<usize>>,
    /// Long-lived state attached to each *required* join, MB.
    pub stateful_join_mb: f64,
}

impl JoinQuery {
    /// The Fig. 5 example: streams A–D at four sites with rates
    /// 20/10/40/10 (scaled to `rate_scale × DEFAULT_RATE` events/s),
    /// where σ(C ⋈ D) is the stateful sub-plan.
    pub fn fig5(sites: [SiteId; 4], sink: SiteId, rate_scale: f64) -> JoinQuery {
        let base = DEFAULT_RATE * rate_scale;
        JoinQuery {
            streams: vec![
                JoinStream::new("A", sites[0], base * 2.0, 16.0),
                JoinStream::new("B", sites[1], base, 16.0),
                JoinStream::new("C", sites[2], base * 4.0, 16.0),
                JoinStream::new("D", sites[3], base, 16.0),
            ],
            window_s: 10.0,
            join_selectivity: 0.6,
            sink,
            required_subtrees: vec![vec![2, 3]],
            stateful_join_mb: 20.0,
        }
    }

    /// The left-deep default tree `(((s0 ⋈ s1) ⋈ s2) … )`, with every
    /// join initially at the sink site.
    pub fn default_tree(&self) -> JoinTree {
        let mut tree = JoinTree::Leaf(0);
        for i in 1..self.streams.len() {
            tree = JoinTree::Node {
                left: Box::new(tree),
                right: Box::new(JoinTree::Leaf(i)),
                site: self.sink,
            };
        }
        tree
    }

    /// Canonical name of the join over `mask` (sorted member names),
    /// stable across trees so common sub-plans share operator names —
    /// and therefore sub-plan fingerprints.
    fn join_name(&self, mask: u32) -> String {
        let mut names: Vec<&str> = (0..self.streams.len())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| self.streams[i].name.as_str())
            .collect();
        names.sort_unstable();
        format!("join[{}]", names.join(","))
    }

    /// True when the join over `mask` carries long-lived state.
    fn is_required(&self, mask: u32) -> bool {
        self.required_subtrees.iter().any(|req| {
            let r: u32 = req.iter().map(|i| 1u32 << i).sum();
            r == mask
        })
    }

    /// Materializes a join tree into a logical + physical plan.
    ///
    /// Join operators are placed at their tree sites at parallelism 1;
    /// the expected per-node rates set each join's selectivity so the
    /// fluid engine reproduces the tree's stream volumes.
    pub fn plan_from_tree(&self, tree: &JoinTree) -> (LogicalPlan, PhysicalPlan) {
        let mut b = LogicalPlanBuilder::new(format!("join-{}", self.streams.len()));
        let mut placements: Vec<(OpId, Placement)> = Vec::new();
        let leaf_ids: Vec<OpId> = self
            .streams
            .iter()
            .map(|s| {
                let id = b.add(OperatorSpec::new(
                    format!("src-{}", s.name),
                    OperatorKind::Source {
                        site: s.site,
                        base_rate: s.rate,
                        event_bytes: s.event_bytes,
                    },
                ));
                placements.push((id, Placement::single(s.site, 1)));
                id
            })
            .collect();

        // Recursively add join operators bottom-up.
        fn build(
            q: &JoinQuery,
            tree: &JoinTree,
            b: &mut LogicalPlanBuilder,
            leaf_ids: &[OpId],
            placements: &mut Vec<(OpId, Placement)>,
        ) -> (OpId, f64, f64) {
            match tree {
                JoinTree::Leaf(i) => (leaf_ids[*i], q.streams[*i].rate, q.streams[*i].event_bytes),
                JoinTree::Node { left, right, site } => {
                    let (l_id, l_rate, l_bytes) = build(q, left, b, leaf_ids, placements);
                    let (r_id, r_rate, r_bytes) = build(q, right, b, leaf_ids, placements);
                    let mask = tree.leaf_mask();
                    let state = if q.is_required(mask) {
                        StateModel::Fixed(MegaBytes(q.stateful_join_mb))
                    } else {
                        StateModel::Window {
                            bytes_per_event: (l_bytes + r_bytes) / 2.0,
                        }
                    };
                    let spec = OperatorSpec::new(
                        q.join_name(mask),
                        OperatorKind::Join {
                            window_s: q.window_s,
                        },
                    )
                    .with_selectivity(q.join_selectivity)
                    .with_cost_us(10.0)
                    .with_out_bytes(l_bytes + r_bytes)
                    .with_state(state);
                    let id = b.add(spec);
                    b.connect(l_id, id);
                    b.connect(r_id, id);
                    placements.push((id, Placement::single(*site, 1)));
                    (
                        id,
                        q.join_selectivity * (l_rate + r_rate),
                        l_bytes + r_bytes,
                    )
                }
            }
        }
        let (root, _, _) = build(self, tree, &mut b, &leaf_ids, &mut placements);
        let sink = b.add(OperatorSpec::new(
            "sink",
            OperatorKind::Sink {
                site: Some(self.sink),
            },
        ));
        b.connect(root, sink);
        placements.push((sink, Placement::single(self.sink, 1)));
        let plan = b.build().expect("join plan is well-formed");
        let mut phys = vec![Placement::empty(); plan.len()];
        for (id, p) in placements {
            phys[id.index()] = p;
        }
        (plan, PhysicalPlan::new(phys))
    }

    /// Reconstructs the join tree of a deployed plan (inverse of
    /// [`JoinQuery::plan_from_tree`]). Returns `None` when the plan's
    /// shape is not a binary join tree over this query's streams.
    pub fn tree_from_plan(&self, plan: &LogicalPlan, physical: &PhysicalPlan) -> Option<JoinTree> {
        let root = *plan.upstream(plan.sinks()[0]).first()?;
        self.tree_from_op(plan, physical, root)
    }

    fn tree_from_op(
        &self,
        plan: &LogicalPlan,
        physical: &PhysicalPlan,
        op: OpId,
    ) -> Option<JoinTree> {
        match plan.op(op).kind() {
            OperatorKind::Source { .. } => {
                let name = plan.op(op).name().strip_prefix("src-")?;
                let i = self.streams.iter().position(|s| s.name == name)?;
                Some(JoinTree::Leaf(i))
            }
            OperatorKind::Join { .. } => {
                let ups = plan.upstream(op);
                if ups.len() != 2 {
                    return None;
                }
                let left = self.tree_from_op(plan, physical, ups[0])?;
                let right = self.tree_from_op(plan, physical, ups[1])?;
                let site = *physical.placement(op).sites().first()?;
                Some(JoinTree::Node {
                    left: Box::new(left),
                    right: Box::new(right),
                    site,
                })
            }
            _ => None,
        }
    }
}

/// Join-order replanner: re-solves the joint join-order/placement
/// problem against the live WAN and proposes a plan switch when it
/// beats the running tree by a margin.
#[derive(Debug, Clone)]
pub struct JoinOrderReplanner {
    query: JoinQuery,
    /// Required relative improvement before switching (hysteresis).
    pub improvement_threshold: f64,
}

impl JoinOrderReplanner {
    /// Creates a replanner for the query with a 10 % improvement
    /// threshold.
    pub fn new(query: JoinQuery) -> JoinOrderReplanner {
        JoinOrderReplanner {
            query,
            improvement_threshold: 0.10,
        }
    }

    fn problem(
        &self,
        est: &WorkloadEstimate,
        plan: &LogicalPlan,
        snap: &QuerySnapshot,
        cfg: &PolicyConfig,
    ) -> ReplanProblem {
        // Leaves with *estimated* rates (actual workload, §3.3).
        let leaves: Vec<StreamLeaf> = self
            .query
            .streams
            .iter()
            .map(|s| {
                let rate = plan
                    .sources()
                    .into_iter()
                    .find(|&src| plan.op(src).name() == format!("src-{}", s.name))
                    .map(|src| est.output(src))
                    .unwrap_or(s.rate);
                StreamLeaf::new(&s.name, s.site, rate * s.event_bytes * 8.0 / 1e6)
            })
            .collect();
        let candidate_sites: Vec<SiteId> = snap
            .free_slots
            .iter()
            .filter(|(_, &free)| free > 0)
            .map(|(&s, _)| s)
            .chain(self.query.streams.iter().map(|s| s.site))
            .collect();
        ReplanProblem {
            leaves,
            join_selectivity: self.query.join_selectivity,
            alpha: cfg.alpha,
            required_subtrees: self.query.required_subtrees.clone(),
            candidate_sites,
        }
    }
}

impl QueryReplanner for JoinOrderReplanner {
    fn replan(
        &self,
        plan: &LogicalPlan,
        physical: &PhysicalPlan,
        snap: &QuerySnapshot,
        est: &WorkloadEstimate,
        net: &Network,
        t: SimTime,
        cfg: &PolicyConfig,
    ) -> Option<PlanSwitch> {
        let current_tree = self.query.tree_from_plan(plan, physical)?;
        let problem = self.problem(est, plan, snap, cfg);
        let (current_cost, _, _) = problem.evaluate(&current_tree, net, t);
        let best = problem.solve(net, t)?;
        if best.cost >= current_cost * (1.0 - self.improvement_threshold) {
            return None;
        }
        let (new_plan, new_physical) = self.query.plan_from_tree(&best.tree);
        // Carry every operator whose sub-plan fingerprint also exists
        // in the new plan (sources and common sub-plan joins).
        let mut carry: Vec<(OpId, OpId)> = Vec::new();
        let mut transfers: Vec<Transfer> = Vec::new();
        for old_op in plan.op_ids() {
            let fp = plan.subplan_fingerprint(old_op);
            if let Some(new_op) = new_plan
                .op_ids()
                .find(|&n| new_plan.subplan_fingerprint(n) == fp)
            {
                carry.push((old_op, new_op));
                // Long-lived state that changes site must be migrated.
                if plan.op(old_op).is_stateful()
                    && matches!(plan.op(old_op).state(), StateModel::Fixed(_))
                {
                    let old_site = physical.placement(old_op).sites();
                    let new_site = new_physical.placement(new_op).sites();
                    if let (Some(&from), Some(&to)) = (old_site.first(), new_site.first()) {
                        if from != to {
                            let mb = snap.stage(old_op).total_state_mb();
                            transfers.push(Transfer::new(from, to, MegaBytes(mb)));
                        }
                    }
                }
            }
        }
        Some(PlanSwitch {
            plan: new_plan,
            physical: new_physical,
            carry,
            transfers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasp_netsim::prelude::*;
    use wasp_streamsim::prelude::*;

    fn fig5_world() -> (Network, JoinQuery) {
        let mut b = TopologyBuilder::new();
        let sites: Vec<SiteId> = (0..4)
            .map(|i| b.add_site(format!("s{i}"), SiteKind::DataCenter, 8))
            .collect();
        let sink = b.add_site("sink", SiteKind::DataCenter, 8);
        b.set_all_links(Mbps(60.0), Millis(20.0));
        let net = Network::new(b.build().unwrap());
        let q = JoinQuery::fig5([sites[0], sites[1], sites[2], sites[3]], sink, 0.05);
        (net, q)
    }

    #[test]
    fn plan_from_tree_roundtrips() {
        let (net, q) = fig5_world();
        let tree = q.default_tree();
        let (plan, phys) = q.plan_from_tree(&tree);
        phys.validate(&plan, net.topology()).unwrap();
        // 4 sources + 3 joins + 1 sink.
        assert_eq!(plan.len(), 8);
        let recovered = q.tree_from_plan(&plan, &phys).unwrap();
        assert_eq!(recovered, tree);
    }

    #[test]
    fn stateful_join_has_fixed_state() {
        let (_, q) = fig5_world();
        // Tree containing C⋈D explicitly.
        let tree = JoinTree::Node {
            left: Box::new(JoinTree::Node {
                left: Box::new(JoinTree::Leaf(0)),
                right: Box::new(JoinTree::Leaf(1)),
                site: q.streams[0].site,
            }),
            right: Box::new(JoinTree::Node {
                left: Box::new(JoinTree::Leaf(2)),
                right: Box::new(JoinTree::Leaf(3)),
                site: q.streams[2].site,
            }),
            site: q.sink,
        };
        let (plan, _) = q.plan_from_tree(&tree);
        let stateful: Vec<&str> = plan
            .stateful_ops()
            .iter()
            .filter(|&&op| matches!(plan.op(op).state(), StateModel::Fixed(_)))
            .map(|&op| plan.op(op).name())
            .collect();
        assert_eq!(stateful, vec!["join[C,D]"]);
    }

    #[test]
    fn common_subplan_fingerprints_match_across_trees() {
        let (_, q) = fig5_world();
        let t1 = JoinTree::Node {
            left: Box::new(JoinTree::Node {
                left: Box::new(JoinTree::Leaf(0)),
                right: Box::new(JoinTree::Leaf(1)),
                site: q.streams[0].site,
            }),
            right: Box::new(JoinTree::Node {
                left: Box::new(JoinTree::Leaf(2)),
                right: Box::new(JoinTree::Leaf(3)),
                site: q.streams[2].site,
            }),
            site: q.sink,
        };
        let t2 = JoinTree::Node {
            left: Box::new(JoinTree::Node {
                left: Box::new(JoinTree::Leaf(3)), // commuted
                right: Box::new(JoinTree::Leaf(2)),
                site: q.streams[3].site,
            }),
            right: Box::new(JoinTree::Node {
                left: Box::new(JoinTree::Leaf(1)),
                right: Box::new(JoinTree::Leaf(0)),
                site: q.streams[1].site,
            }),
            site: q.sink,
        };
        let (p1, _) = q.plan_from_tree(&t1);
        let (p2, _) = q.plan_from_tree(&t2);
        let find = |p: &LogicalPlan, name: &str| {
            p.op_ids()
                .find(|&op| p.op(op).name() == name)
                .map(|op| p.subplan_fingerprint(op))
        };
        assert_eq!(find(&p1, "join[C,D]"), find(&p2, "join[C,D]"));
        assert_eq!(find(&p1, "join[A,B]"), find(&p2, "join[A,B]"));
    }

    #[test]
    fn replanner_switches_when_a_link_collapses() {
        let (mut net, q) = fig5_world();
        let tree = q.default_tree(); // everything joins at the sink
        let (plan, phys) = q.plan_from_tree(&tree);
        // Stream C's path to the sink collapses.
        net.set_pair_factor(q.streams[2].site, q.sink, FactorSeries::constant(0.02));
        let mut eng = Engine::new(
            net,
            wasp_netsim::dynamics::DynamicsScript::none(),
            plan.clone(),
            phys,
            EngineConfig::default(),
        )
        .unwrap();
        eng.run(120.0);
        let snap = eng.snapshot();
        let est = wasp_core::estimator::WorkloadEstimate::from_snapshot(&plan, &snap);
        let replanner = JoinOrderReplanner::new(q.clone());
        let sw = replanner
            .replan(
                &plan,
                eng.physical(),
                &snap,
                &est,
                eng.network(),
                eng.now(),
                &wasp_core::policy::PolicyConfig::default(),
            )
            .expect("a better plan must exist");
        // The new plan still contains the stateful common sub-plan.
        let has_cd = sw
            .plan
            .op_ids()
            .any(|op| sw.plan.op(op).name() == "join[C,D]");
        assert!(has_cd, "C⋈D must be preserved");
        // Applying the switch keeps the query running.
        eng.apply(Command::SwitchPlan(Box::new(sw))).unwrap();
        eng.run(120.0);
        let late: f64 = eng
            .metrics()
            .ticks()
            .iter()
            .filter(|r| r.t > 180.0)
            .map(|r| r.delivered)
            .sum();
        assert!(late > 0.0, "query must deliver after the switch");
    }

    #[test]
    fn replanner_keeps_good_plans() {
        let (net, q) = fig5_world();
        // Solve for the best plan first, deploy it, then ask again:
        // no switch should be proposed.
        let (plan0, phys0) = q.plan_from_tree(&q.default_tree());
        let mut eng = Engine::new(
            net,
            wasp_netsim::dynamics::DynamicsScript::none(),
            plan0.clone(),
            phys0,
            EngineConfig::default(),
        )
        .unwrap();
        eng.run(60.0);
        let snap = eng.snapshot();
        let est = wasp_core::estimator::WorkloadEstimate::from_snapshot(&plan0, &snap);
        let replanner = JoinOrderReplanner::new(q.clone());
        let cfg = wasp_core::policy::PolicyConfig::default();
        if let Some(sw) = replanner.replan(
            &plan0,
            eng.physical(),
            &snap,
            &est,
            eng.network(),
            eng.now(),
            &cfg,
        ) {
            // Deploy the improvement, then the replanner must go
            // quiet.
            let plan1 = sw.plan.clone();
            eng.apply(Command::SwitchPlan(Box::new(sw))).unwrap();
            eng.run(60.0);
            let snap1 = eng.snapshot();
            let est1 = wasp_core::estimator::WorkloadEstimate::from_snapshot(&plan1, &snap1);
            let again = replanner.replan(
                &plan1,
                eng.physical(),
                &snap1,
                &est1,
                eng.network(),
                eng.now(),
                &cfg,
            );
            assert!(again.is_none(), "should converge after one switch");
        }
    }
}

#[cfg(test)]
mod record_level_tests {
    use super::*;
    use std::collections::BTreeMap;
    use wasp_netsim::prelude::*;
    use wasp_streamsim::exact::Event;
    use wasp_streamsim::exact_engine::ExactEngine;
    use wasp_streamsim::prelude::*;

    /// The §4.3 guarantee, end to end: the plan proposed by the
    /// join-order replanner delivers *identical records* to the plan
    /// it replaces.
    #[test]
    fn replanned_join_produces_identical_records() {
        let mut b = TopologyBuilder::new();
        let sites: Vec<SiteId> = (0..4)
            .map(|i| b.add_site(format!("s{i}"), SiteKind::DataCenter, 8))
            .collect();
        let sink = b.add_site("sink", SiteKind::DataCenter, 8);
        b.set_all_links(Mbps(60.0), Millis(20.0));
        let mut net = Network::new(b.build().unwrap());
        net.set_pair_factor(sites[2], sink, FactorSeries::constant(0.02));

        let q = JoinQuery::fig5([sites[0], sites[1], sites[2], sites[3]], sink, 0.5);
        let (old_plan, old_phys) = q.plan_from_tree(&q.default_tree());

        // Get a proposal from the replanner (via a short fluid run for
        // the snapshot it needs).
        let mut eng = Engine::new(
            net,
            wasp_netsim::dynamics::DynamicsScript::none(),
            old_plan.clone(),
            old_phys,
            EngineConfig {
                dt: 0.5,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        eng.run(120.0);
        let snap = eng.snapshot();
        let est = wasp_core::estimator::WorkloadEstimate::from_snapshot(&old_plan, &snap);
        let sw = JoinOrderReplanner::new(q.clone())
            .replan(
                &old_plan,
                eng.physical(),
                &snap,
                &est,
                eng.network(),
                eng.now(),
                &wasp_core::policy::PolicyConfig::default(),
            )
            .expect("a better plan exists over the degraded link");
        assert_ne!(sw.plan.name(), "", "proposal produced");

        // Execute both plans at record level over the same streams.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let mut streams: Vec<Vec<Event>> = Vec::new();
        for _ in 0..4 {
            let mut ev: Vec<Event> = (0..200)
                .map(|_| Event::new(rng.gen_range(0.0..30.0), rng.gen_range(0..4u64), 1.0))
                .collect();
            ev.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite"));
            streams.push(ev);
        }
        let feed = |plan: &LogicalPlan| -> BTreeMap<OpId, Vec<Event>> {
            // Match streams to sources by name (src-A … src-D).
            plan.sources()
                .into_iter()
                .map(|src| {
                    let name = plan.op(src).name();
                    let idx = match name {
                        "src-A" => 0,
                        "src-B" => 1,
                        "src-C" => 2,
                        "src-D" => 3,
                        other => panic!("unexpected source {other}"),
                    };
                    (src, streams[idx].clone())
                })
                .collect()
        };
        let old_out = ExactEngine::new(&old_plan).execute(&feed(&old_plan));
        let new_out = ExactEngine::new(&sw.plan).execute(&feed(&sw.plan));
        assert_eq!(old_out, new_out, "§4.3: alternative plans must agree");
        assert!(!old_out.is_empty());
    }
}
