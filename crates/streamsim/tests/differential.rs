//! # Sequential ↔ parallel differential harness
//!
//! The deterministic parallel runtime's contract: for **any** worker
//! count, a run is *byte-for-byte* the run the sequential engine
//! produces — same `RunMetrics` (every tick row, the full delay
//! histogram, the annotation audit), same monitor snapshot stream,
//! same controller decision log. This suite proves it three ways:
//!
//! 1. every section-8 scenario (§8.4 both queries, §8.5, §8.6) run at
//!    1 / 2 / 8 threads under its real controller, comparing canonical
//!    JSON of the recording and the telemetry decision audit;
//! 2. a 12-seed chaos sweep (crashes, flaps, blackouts, stragglers via
//!    `ChaosInjector`) comparing recordings *and* snapshot streams;
//! 3. a fluid-engine ↔ `exact_engine` regression pinning the
//!    delay/throughput agreement on the three paper queries.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wasp_netsim::chaos::{ChaosConfig, ChaosInjector};
use wasp_netsim::dynamics::DynamicsScript;
use wasp_netsim::network::Network;
use wasp_netsim::site::{SiteId, SiteKind};
use wasp_netsim::topology::TopologyBuilder;
use wasp_netsim::units::{Mbps, Millis};
use wasp_streamsim::exact::{top_k, Event};
use wasp_streamsim::prelude::*;
use wasp_streamsim::testkit::{assert_identical, canonical_json, first_divergence};
use wasp_workloads::prelude::*;
use wasp_workloads::queries::TOPK_K;

/// Parallel worker counts checked against the sequential reference.
const THREADS: [usize; 2] = [2, 8];

// ---------------------------------------------------------------------
// 1. Section-8 scenarios: bit-identical recordings + decision audits.
// ---------------------------------------------------------------------

/// Runs one scenario at the given engine parallelism with recording
/// telemetry, returning (canonical recording JSON, decision-audit
/// JSONL).
fn scenario_digest(
    run: &dyn Fn(&ScenarioConfig) -> ExperimentResult,
    jobs: usize,
) -> (String, String) {
    let (tel, handle) = Telemetry::recording();
    let cfg = ScenarioConfig {
        seed: 4,
        // Coarse tick: the bit-identity contract is dt-independent,
        // and 2 s keeps twelve full paper-testbed runs affordable in
        // debug-mode CI.
        dt: 2.0,
        telemetry: tel,
        metrics: MetricsHub::recording(10.0),
        jobs,
        ..ScenarioConfig::default()
    };
    let result = run(&cfg);
    (
        canonical_json(&result.metrics),
        to_jsonl(&handle.recording()).unwrap(),
    )
}

#[test]
fn section_8_scenarios_bit_identical_across_thread_counts() {
    type ScenarioRun = Box<dyn Fn(&ScenarioConfig) -> ExperimentResult>;
    let scenarios: Vec<(&str, ScenarioRun)> = vec![
        (
            "section_8_4/topk",
            Box::new(|cfg| run_section_8_4(QueryKind::TopK, ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_4/advertising",
            Box::new(|cfg| run_section_8_4(QueryKind::Advertising, ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_5/topk",
            Box::new(|cfg| run_section_8_5(ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_6/live",
            Box::new(|cfg| run_section_8_6(ControllerKind::Wasp, cfg)),
        ),
    ];
    for (name, run) in &scenarios {
        let (metrics_ref, audit_ref) = scenario_digest(run.as_ref(), 1);
        assert!(
            !audit_ref.is_empty(),
            "{name}: the decision audit must actually record decisions"
        );
        for jobs in THREADS {
            let (metrics, audit) = scenario_digest(run.as_ref(), jobs);
            if let Some(diff) = first_divergence(&metrics_ref, &metrics) {
                panic!("{name} (jobs={jobs}): RunMetrics diverged — {diff}");
            }
            if let Some(diff) = first_divergence(&audit_ref, &audit) {
                panic!("{name} (jobs={jobs}): decision audit diverged — {diff}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// 1b. X-ray attribution: conservation + bit-identity across threads.
// ---------------------------------------------------------------------

/// Runs one scenario with latency attribution on, returning the
/// canonical JSON of the [`wasp_xray::XrayRun`] snapshot.
fn xray_digest(
    run: &dyn Fn(&ScenarioConfig) -> ExperimentResult,
    jobs: usize,
) -> (String, wasp_xray::XrayRun) {
    let cfg = ScenarioConfig {
        seed: 4,
        dt: 2.0,
        jobs,
        xray: Some(XRAY_DEFAULT_WINDOW_S),
        ..ScenarioConfig::default()
    };
    let result = run(&cfg);
    let x = result.xray.expect("xray was enabled");
    (canonical_json(&x), x)
}

/// The tentpole invariants, over every §8 scenario:
///
/// 1. *Conservation* — per (window, sink) cell, the six component
///    histograms sum to the end-to-end delay histogram's sum within
///    1e-6 relative error. The ledger never invents or loses time.
/// 2. *Determinism* — the full attribution snapshot (delivery-view
///    histograms, flow-view node/edge charges, WAN-link ledger,
///    adaptation lags) serializes byte-identically at engine
///    parallelism 1, 2, and 8.
#[test]
fn xray_attribution_conserved_and_bit_identical_across_thread_counts() {
    type ScenarioRun = Box<dyn Fn(&ScenarioConfig) -> ExperimentResult>;
    let scenarios: Vec<(&str, ScenarioRun)> = vec![
        (
            "section_8_4/topk",
            Box::new(|cfg| run_section_8_4(QueryKind::TopK, ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_4/advertising",
            Box::new(|cfg| run_section_8_4(QueryKind::Advertising, ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_5/topk",
            Box::new(|cfg| run_section_8_5(ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_6/live",
            Box::new(|cfg| run_section_8_6(ControllerKind::Wasp, cfg)),
        ),
    ];
    for (name, run) in &scenarios {
        let (digest_ref, x) = xray_digest(run.as_ref(), 1);
        assert!(
            x.windows.iter().any(|w| !w.sinks.is_empty()),
            "{name}: attribution must record deliveries"
        );
        let err = x.conservation_error();
        assert!(
            err <= 1e-6,
            "{name}: conservation violated — components sum off by {err:.3e}"
        );
        for jobs in THREADS {
            let (digest, _) = xray_digest(run.as_ref(), jobs);
            if let Some(diff) = first_divergence(&digest_ref, &digest) {
                panic!("{name} (jobs={jobs}): attribution diverged — {diff}");
            }
        }
    }
}

/// Runs one scenario with an explicit keyed-state model, returning the
/// same digests as [`scenario_digest`].
fn scenario_state_digest(
    run: &dyn Fn(&ScenarioConfig) -> ExperimentResult,
    state: wasp_state::StateModel,
    jobs: usize,
) -> (String, String) {
    let (tel, handle) = Telemetry::recording();
    let cfg = ScenarioConfig {
        seed: 4,
        dt: 2.0,
        telemetry: tel,
        metrics: MetricsHub::recording(10.0),
        jobs,
        state,
        ..ScenarioConfig::default()
    };
    let result = run(&cfg);
    (
        canonical_json(&result.metrics),
        to_jsonl(&handle.recording()).unwrap(),
    )
}

/// Runs the §8.4 top-k scenario with an explicit keyed-state model.
fn state_model_digest(state: wasp_state::StateModel, jobs: usize) -> (String, String) {
    scenario_state_digest(
        &|cfg| run_section_8_4(QueryKind::TopK, ControllerKind::Wasp, cfg),
        state,
        jobs,
    )
}

/// The mode switch's contract: `StateModel::Coarse` — the default —
/// is not merely *similar* to the pre-subsystem engine, it is the
/// byte-identical legacy path. An explicitly-spelled `Coarse` run must
/// reproduce the default-config recording and decision audit exactly,
/// at every worker count.
#[test]
fn explicit_coarse_state_model_is_byte_identical_to_default() {
    let run: &dyn Fn(&ScenarioConfig) -> ExperimentResult =
        &|cfg| run_section_8_4(QueryKind::TopK, ControllerKind::Wasp, cfg);
    let (metrics_ref, audit_ref) = scenario_digest(run, 1);
    for jobs in [1, 2, 8] {
        let (metrics, audit) = state_model_digest(wasp_state::StateModel::Coarse, jobs);
        if let Some(diff) = first_divergence(&metrics_ref, &metrics) {
            panic!("explicit Coarse (jobs={jobs}): RunMetrics diverged — {diff}");
        }
        if let Some(diff) = first_divergence(&audit_ref, &audit) {
            panic!("explicit Coarse (jobs={jobs}): decision audit diverged — {diff}");
        }
    }
}

/// The partitioned model's new per-tick work (sampled writes, delta
/// checkpoints, slice flights) lives inside the deterministic reduce,
/// so partitioned runs are also bit-identical at any worker count.
#[test]
fn partitioned_state_runs_bit_identical_across_thread_counts() {
    let part = wasp_state::StateModel::Partitioned(wasp_state::PartitionConfig::default());
    let (metrics_ref, audit_ref) = state_model_digest(part, 1);
    for jobs in THREADS {
        let (metrics, audit) = state_model_digest(part, jobs);
        if let Some(diff) = first_divergence(&metrics_ref, &metrics) {
            panic!("partitioned (jobs={jobs}): RunMetrics diverged — {diff}");
        }
        if let Some(diff) = first_divergence(&audit_ref, &audit) {
            panic!("partitioned (jobs={jobs}): decision audit diverged — {diff}");
        }
    }
}

/// Runs the skewed-state experiment with runtime key-range splitting
/// enabled, returning (metrics JSON, audit JSONL, state-timeline
/// digest). The timeline types deliberately don't serialize, so the
/// third digest is their `Debug` form — still a full-precision,
/// deterministic byte string.
fn skewed_split_digest(jobs: usize) -> (String, String, String) {
    let (tel, handle) = Telemetry::recording();
    let cfg = ScenarioConfig {
        seed: 4,
        // The skewed-state rescue needs the fine tick to trigger at
        // all (at dt=2 the monitor never sees the degradation cross
        // its threshold); the run is short, so this stays cheap.
        dt: 0.5,
        telemetry: tel,
        metrics: MetricsHub::recording(10.0),
        jobs,
        ..ScenarioConfig::default()
    };
    let r = run_skewed_split_experiment(60.0, &cfg);
    (
        canonical_json(&r.metrics),
        to_jsonl(&handle.recording()).unwrap(),
        format!("{:?}", r.timeline),
    )
}

/// The new split machinery rewrites partition weights mid-flight, so it
/// must live inside the deterministic reduce like everything else: the
/// skewed-split scenario — splits firing, lineage-carrying slice
/// flights, split telemetry — is byte-identical at engine parallelism
/// 1, 2 and 8.
#[test]
fn skewed_split_scenario_bit_identical_across_thread_counts() {
    let (metrics_ref, audit_ref, timeline_ref) = skewed_split_digest(1);
    assert!(
        audit_ref.contains("PartitionSplit"),
        "the skewed-split scenario must actually split"
    );
    for jobs in THREADS {
        let (metrics, audit, timeline) = skewed_split_digest(jobs);
        if let Some(diff) = first_divergence(&metrics_ref, &metrics) {
            panic!("skewed-split (jobs={jobs}): RunMetrics diverged — {diff}");
        }
        if let Some(diff) = first_divergence(&audit_ref, &audit) {
            panic!("skewed-split (jobs={jobs}): decision audit diverged — {diff}");
        }
        if let Some(diff) = first_divergence(&timeline_ref, &timeline) {
            panic!("skewed-split (jobs={jobs}): state timeline diverged — {diff}");
        }
    }
}

/// `split_threshold = None` (the default) pins the PR 8 flat-partitioned
/// path: every §8 scenario runs byte-identically at jobs 1/2/8 with the
/// split machinery compiled in but disabled, and no `PartitionSplit`
/// event may appear anywhere in the audit.
#[test]
fn disabled_splitting_leaves_every_section_8_scenario_untouched() {
    type ScenarioRun = Box<dyn Fn(&ScenarioConfig) -> ExperimentResult>;
    let scenarios: Vec<(&str, ScenarioRun)> = vec![
        (
            "section_8_4/topk",
            Box::new(|cfg| run_section_8_4(QueryKind::TopK, ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_4/advertising",
            Box::new(|cfg| run_section_8_4(QueryKind::Advertising, ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_5/topk",
            Box::new(|cfg| run_section_8_5(ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_6/live",
            Box::new(|cfg| run_section_8_6(ControllerKind::Wasp, cfg)),
        ),
    ];
    let flat = wasp_state::StateModel::Partitioned(wasp_state::PartitionConfig::default());
    for (name, run) in &scenarios {
        let (metrics_ref, audit_ref) = scenario_state_digest(run.as_ref(), flat, 1);
        assert!(
            !audit_ref.contains("PartitionSplit"),
            "{name}: split_threshold=None must never split"
        );
        for jobs in THREADS {
            let (metrics, audit) = scenario_state_digest(run.as_ref(), flat, jobs);
            if let Some(diff) = first_divergence(&metrics_ref, &metrics) {
                panic!("{name} flat-partitioned (jobs={jobs}): RunMetrics diverged — {diff}");
            }
            if let Some(diff) = first_divergence(&audit_ref, &audit) {
                panic!("{name} flat-partitioned (jobs={jobs}): decision audit diverged — {diff}");
            }
        }
    }
}

/// `CompactionPolicy::None` (the default) pins the PR 9 partitioned
/// path with the delta-chain machinery compiled in but disabled: for
/// every §8 scenario *and* the skewed-split scenario, a config
/// spelling the policy out explicitly is byte-identical to the default
/// config at jobs 1/2/8, and no chain event (compaction, recovery
/// replay) may appear anywhere in the audit.
#[test]
fn disabled_compaction_leaves_every_scenario_untouched() {
    type ScenarioRun = Box<dyn Fn(&ScenarioConfig) -> ExperimentResult>;
    let scenarios: Vec<(&str, ScenarioRun)> = vec![
        (
            "section_8_4/topk",
            Box::new(|cfg| run_section_8_4(QueryKind::TopK, ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_4/advertising",
            Box::new(|cfg| run_section_8_4(QueryKind::Advertising, ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_5/topk",
            Box::new(|cfg| run_section_8_5(ControllerKind::Wasp, cfg)),
        ),
        (
            "section_8_6/live",
            Box::new(|cfg| run_section_8_6(ControllerKind::Wasp, cfg)),
        ),
    ];
    let default_cfg = wasp_state::StateModel::Partitioned(wasp_state::PartitionConfig::default());
    let explicit_none = wasp_state::StateModel::Partitioned(
        wasp_state::PartitionConfig::with_compaction(wasp_state::CompactionPolicy::None),
    );
    for (name, run) in &scenarios {
        let (metrics_ref, audit_ref) = scenario_state_digest(run.as_ref(), default_cfg, 1);
        assert!(
            !audit_ref.contains("CheckpointCompaction") && !audit_ref.contains("RecoveryReplay"),
            "{name}: CompactionPolicy::None must never emit chain events"
        );
        for jobs in [1, 2, 8] {
            let (metrics, audit) = scenario_state_digest(run.as_ref(), explicit_none, jobs);
            if let Some(diff) = first_divergence(&metrics_ref, &metrics) {
                panic!("{name} compaction-off (jobs={jobs}): RunMetrics diverged — {diff}");
            }
            if let Some(diff) = first_divergence(&audit_ref, &audit) {
                panic!("{name} compaction-off (jobs={jobs}): decision audit diverged — {diff}");
            }
        }
    }
    // The skewed-split scenario too: splitting plus an explicit
    // disabled policy reproduces the plain skewed-split digests.
    let (metrics_ref, audit_ref, timeline_ref) = skewed_split_digest(1);
    for jobs in [1, 2, 8] {
        let (metrics, audit, timeline) = skewed_split_none_digest(jobs);
        if let Some(diff) = first_divergence(&metrics_ref, &metrics) {
            panic!("skewed-split compaction-off (jobs={jobs}): RunMetrics diverged — {diff}");
        }
        if let Some(diff) = first_divergence(&audit_ref, &audit) {
            panic!("skewed-split compaction-off (jobs={jobs}): decision audit diverged — {diff}");
        }
        if let Some(diff) = first_divergence(&timeline_ref, &timeline) {
            panic!("skewed-split compaction-off (jobs={jobs}): state timeline diverged — {diff}");
        }
    }
}

/// [`skewed_split_digest`] with the compaction policy spelled out as
/// `None` next to the split threshold.
fn skewed_split_none_digest(jobs: usize) -> (String, String, String) {
    let (tel, handle) = Telemetry::recording();
    let cfg = ScenarioConfig {
        seed: 4,
        dt: 0.5,
        telemetry: tel,
        metrics: MetricsHub::recording(10.0),
        jobs,
        ..ScenarioConfig::default()
    };
    let state = wasp_state::StateModel::Partitioned(wasp_state::PartitionConfig {
        split_threshold: Some(SKEWED_SPLIT_THRESHOLD),
        compaction: wasp_state::CompactionPolicy::None,
        ..wasp_state::PartitionConfig::default()
    });
    let r = run_skewed_state_experiment(state, 60.0, &cfg);
    (
        canonical_json(&r.metrics),
        to_jsonl(&handle.recording()).unwrap(),
        format!("{:?}", r.timeline),
    )
}

/// Runs the compaction scenario (delta chains, full-snapshot bursts,
/// scripted failures, recovery replays) and returns (metrics JSON,
/// audit JSONL, state-timeline digest).
fn compaction_scenario_digest(jobs: usize) -> (String, String, String) {
    let (tel, handle) = Telemetry::recording();
    let cfg = ScenarioConfig {
        seed: 4,
        dt: 0.5,
        telemetry: tel,
        metrics: MetricsHub::recording(10.0),
        jobs,
        ..ScenarioConfig::default()
    };
    let r = run_compaction_experiment(
        wasp_state::CompactionPolicy::every_n_rounds(COMPACTION_EVERY_N_ROUNDS),
        48.0,
        &cfg,
    );
    (
        canonical_json(&r.metrics),
        to_jsonl(&handle.recording()).unwrap(),
        format!("{:?}", r.timeline),
    )
}

/// The chain machinery's own determinism pin: the compaction scenario
/// — chains recorded every round, full-snapshot flights contending on
/// the WAN, three scripted failures replaying the chain — is
/// byte-identical at engine parallelism 1, 2 and 8, including the full
/// compaction/replay timeline.
#[test]
fn compaction_scenario_bit_identical_across_thread_counts() {
    let (metrics_ref, audit_ref, timeline_ref) = compaction_scenario_digest(1);
    assert!(
        audit_ref.contains("CheckpointCompaction"),
        "the compaction scenario must actually compact"
    );
    assert!(
        audit_ref.contains("RecoveryReplay"),
        "the compaction scenario must actually replay on failure"
    );
    for jobs in THREADS {
        let (metrics, audit, timeline) = compaction_scenario_digest(jobs);
        if let Some(diff) = first_divergence(&metrics_ref, &metrics) {
            panic!("compaction (jobs={jobs}): RunMetrics diverged — {diff}");
        }
        if let Some(diff) = first_divergence(&audit_ref, &audit) {
            panic!("compaction (jobs={jobs}): decision audit diverged — {diff}");
        }
        if let Some(diff) = first_divergence(&timeline_ref, &timeline) {
            panic!("compaction (jobs={jobs}): state timeline diverged — {diff}");
        }
    }
}

// ---------------------------------------------------------------------
// 2. Chaos sweep: seeded fault campaigns, recordings + snapshots.
// ---------------------------------------------------------------------

/// Three-site chaos world: an edge source plus two data centers.
fn chaos_world() -> (Network, SiteId, SiteId, SiteId) {
    let mut b = TopologyBuilder::new();
    let edge = b.add_site("edge", SiteKind::Edge, 4);
    let dc1 = b.add_site("dc1", SiteKind::DataCenter, 8);
    let dc2 = b.add_site("dc2", SiteKind::DataCenter, 8);
    b.set_symmetric_link(edge, dc1, Mbps(25.0), Millis(20.0));
    b.set_symmetric_link(edge, dc2, Mbps(25.0), Millis(25.0));
    b.set_symmetric_link(dc1, dc2, Mbps(15.0), Millis(30.0));
    (Network::new(b.build().unwrap()), edge, dc1, dc2)
}

/// src(edge) → window-aggregate → sink(dc1), under a seeded fault
/// campaign; returns (recording JSON, snapshot-stream JSON).
fn chaos_digest(seed: u64, jobs: usize) -> (String, String) {
    let (net, edge, dc1, dc2) = chaos_world();
    let mut p = LogicalPlanBuilder::new("chaos");
    let s = p.add(OperatorSpec::new(
        "src",
        OperatorKind::Source {
            site: edge,
            base_rate: 2_000.0,
            event_bytes: 50.0,
        },
    ));
    let w = p.add(
        OperatorSpec::new("agg", OperatorKind::WindowAggregate { window_s: 10.0 })
            .with_selectivity(0.1)
            .with_cost_us(20.0)
            .with_state(StateModel::Window {
                bytes_per_event: 40.0,
            }),
    );
    let k = p.add(OperatorSpec::new("sink", OperatorKind::Sink { site: None }));
    p.connect(s, w);
    p.connect(w, k);
    let plan = p.build().unwrap();
    let (script, events) = ChaosInjector::with_config(seed, ChaosConfig::full(600.0)).compile(
        DynamicsScript::none(),
        &[dc1, dc2],
        &[(edge, dc1), (dc1, dc2)],
    );
    assert!(!events.is_empty(), "campaign {seed} schedules faults");
    let physical = PhysicalPlan::initial(&plan, dc1);
    let cfg = EngineConfig {
        dt: 0.5,
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(net, script, plan, physical, cfg).unwrap();
    eng.set_parallelism(jobs);
    // Drive the monitor loop by hand so the snapshot-event stream
    // itself is part of the comparison.
    let mut snaps = Vec::new();
    for _ in 0..15 {
        eng.run(40.0);
        snaps.push(eng.snapshot());
    }
    (canonical_json(eng.metrics()), canonical_json(&snaps))
}

#[test]
fn chaos_campaigns_bit_identical_across_thread_counts() {
    for seed in 0..12u64 {
        let (metrics_ref, snaps_ref) = chaos_digest(seed, 1);
        for jobs in THREADS {
            let (metrics, snaps) = chaos_digest(seed, jobs);
            if let Some(diff) = first_divergence(&metrics_ref, &metrics) {
                panic!("chaos seed {seed} (jobs={jobs}): RunMetrics diverged — {diff}");
            }
            if let Some(diff) = first_divergence(&snaps_ref, &snaps) {
                panic!("chaos seed {seed} (jobs={jobs}): snapshot stream diverged — {diff}");
            }
        }
    }
}

/// Repeating the identical run must also be bit-stable (the RNG,
/// telemetry and metrics state are per-run, never process-global).
#[test]
fn chaos_campaign_double_run_is_bit_stable() {
    let a = chaos_digest(7, 8);
    let b = chaos_digest(7, 8);
    assert_eq!(a, b, "same seed, same jobs → same bytes");
}

// ---------------------------------------------------------------------
// 3. Fluid engine ↔ exact engine: delay/throughput agreement.
// ---------------------------------------------------------------------

/// An ample-bandwidth world for semantics comparisons: `n` edge
/// sources and one data-center sink, links far above demand so the
/// fluid engine's delivered/generated ratio reflects plan semantics,
/// not network constraints.
fn ample_world(n_sources: usize) -> (Network, Vec<SiteId>, SiteId) {
    let mut b = TopologyBuilder::new();
    let mut edges = Vec::new();
    for i in 0..n_sources {
        edges.push(b.add_site(format!("edge{i}"), SiteKind::Edge, 4));
    }
    let dc = b.add_site("dc", SiteKind::DataCenter, 16);
    b.set_all_links(Mbps(2_000.0), Millis(15.0));
    (Network::new(b.build().unwrap()), edges, dc)
}

/// Runs `plan` on the fluid engine for `duration_s` and returns
/// (delivered/generated ratio, steady-state p50 delay).
fn fluid_ratio_and_delay(
    plan: LogicalPlan,
    net: Network,
    dc: SiteId,
    duration_s: f64,
) -> (f64, f64) {
    let physical = PhysicalPlan::initial(&plan, dc);
    let cfg = EngineConfig {
        dt: 0.5,
        ..EngineConfig::default()
    };
    let mut eng = Engine::new(net, DynamicsScript::none(), plan, physical, cfg).unwrap();
    eng.run(duration_s);
    let m = eng.metrics();
    let ratio = m.total_delivered() / m.total_generated().max(1e-9);
    let p50 = m
        .delay_quantile_between(duration_s * 0.5, duration_s, 0.5)
        .expect("steady-state deliveries");
    (ratio, p50)
}

#[test]
fn advertising_agrees_with_exact_engine() {
    // Record level: the real YSB generator through the real plan with
    // the benchmark's semantics (view filter + campaign join).
    let rate = 1_000.0;
    let horizon = 120.0;
    let gen = YsbGenerator::new(4);
    let (net, edges, dc) = ample_world(2);
    let sources: Vec<(SiteId, f64)> = edges.iter().map(|&e| (e, rate)).collect();
    let plan = advertising_campaign(&sources, dc);
    let e2e = plan.end_to_end_selectivity();
    let mut streams: BTreeMap<wasp_streamsim::ids::OpId, Vec<Event>> = BTreeMap::new();
    let mut total_in = 0usize;
    for (i, &src) in plan.sources().iter().enumerate() {
        let g = YsbGenerator::new(4 + i as u64);
        let ad_events = g.generate((rate * horizon) as usize, horizon);
        total_in += ad_events.len();
        let evs: Vec<Event> = ad_events
            .iter()
            .map(|e| {
                let ty = match e.event_type {
                    EventType::View => 0.0,
                    EventType::Click => 1.0,
                    EventType::Purchase => 2.0,
                };
                Event::new(e.event_time, e.ad_id, ty)
            })
            .collect();
        streams.insert(src, evs);
    }
    let out = ExactEngine::new(&plan)
        .with_predicate("filter-views", |e| e.value == 0.0)
        .with_mapper("join-campaign", move |e| {
            Event::new(e.time, gen.campaign_of(e.key), e.value)
        })
        .execute(&streams);
    let sigma_exact = out.len() as f64 / total_in as f64;
    let (sigma_fluid, p50) = fluid_ratio_and_delay(plan, net, dc, 600.0);
    // Throughput agreement: both engines land on the plan's declared
    // end-to-end selectivity (the fluid side loses only pipeline
    // fill + the last unfired window).
    assert!(
        (sigma_exact / e2e - 1.0).abs() < 0.10,
        "exact σ {sigma_exact} vs plan e2e {e2e}"
    );
    assert!(
        (0.85..=1.02).contains(&(sigma_fluid / e2e)),
        "fluid σ {sigma_fluid} vs plan e2e {e2e}"
    );
    assert!(
        (sigma_fluid / sigma_exact - 1.0).abs() < 0.15,
        "fluid {sigma_fluid} vs exact {sigma_exact}"
    );
    // Delay agreement with the §8.3 rule both engines implement: a
    // window result carries the window's *max event time*, so the
    // delivery delay is watermark lag + transit (a few seconds), not
    // the window length.
    assert!(
        (0.5..=10.0).contains(&p50),
        "advertising p50 delay {p50} outside the watermark-lag regime"
    );
}

#[test]
fn topk_agrees_with_exact_engine() {
    // Eight countries, one source each, over the Twitter trace.
    let rate = 250.0;
    let horizon = 120.0;
    let trace = TwitterTrace::default();
    let (net, edges, dc) = ample_world(8);
    let sources: Vec<(SiteId, f64)> = edges.iter().map(|&e| (e, rate)).collect();
    let plan = topk_topics(&sources, dc);
    let e2e = plan.end_to_end_selectivity();
    let mut streams: BTreeMap<wasp_streamsim::ids::OpId, Vec<Event>> = BTreeMap::new();
    let mut all_events = Vec::new();
    let mut total_in = 0usize;
    for (country, &src) in plan.sources().iter().enumerate() {
        let evs = trace.events(country, (rate * horizon) as usize, horizon);
        total_in += evs.len();
        all_events.extend(evs.iter().copied());
        streams.insert(src, evs);
    }
    // The plan's window stage models the top-K emission: K records per
    // (window, country). The exact engine's count-aggregate emits one
    // record per (window, country), so the record-level agreement
    // carries a documented factor of exactly K.
    let out = ExactEngine::new(&plan).execute(&streams);
    let sigma_exact_counts = out.len() as f64 / total_in as f64;
    // Reference top-K semantics on the same records: K per group once
    // every country sees ≥ K topics per window.
    let reference = top_k(&all_events, 30.0, TOPK_K);
    let sigma_reference = reference.len() as f64 / total_in as f64;
    let (sigma_fluid, p50) = fluid_ratio_and_delay(plan, net, dc, 600.0);
    assert!(
        (sigma_exact_counts * TOPK_K as f64 / e2e - 1.0).abs() < 0.10,
        "exact count-σ {sigma_exact_counts} × K vs plan e2e {e2e}"
    );
    assert!(
        (sigma_reference / e2e - 1.0).abs() < 0.10,
        "reference top-k σ {sigma_reference} vs plan e2e {e2e}"
    );
    assert!(
        (0.80..=1.02).contains(&(sigma_fluid / e2e)),
        "fluid σ {sigma_fluid} vs plan e2e {e2e}"
    );
    // Delay agreement with the §8.3 rule: window results carry the
    // window's max event time, so even a 30 s window delivers with
    // only watermark lag + transit.
    assert!(
        (0.5..=10.0).contains(&p50),
        "top-k p50 delay {p50} outside the watermark-lag regime"
    );
}

#[test]
fn events_of_interest_agrees_with_exact_engine() {
    // Stateless pipeline: record-level and fluid selectivity must both
    // equal the filter's σ = 0.1 almost exactly.
    let rate = 1_000.0;
    let horizon = 120.0;
    let (net, edges, dc) = ample_world(2);
    let sources: Vec<(SiteId, f64)> = edges.iter().map(|&e| (e, rate)).collect();
    let plan = events_of_interest(&sources, dc);
    let e2e = plan.end_to_end_selectivity();
    let mut streams: BTreeMap<wasp_streamsim::ids::OpId, Vec<Event>> = BTreeMap::new();
    let mut total_in = 0usize;
    for (i, &src) in plan.sources().iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(90 + i as u64);
        let mut evs: Vec<Event> = (0..(rate * horizon) as usize)
            .map(|_| {
                Event::new(
                    rng.gen_range(0.0..horizon),
                    rng.gen_range(0..1_000u64),
                    (rng.gen_range(0.0..5.0f64)).floor(),
                )
            })
            .collect();
        evs.sort_by(|a, b| a.time.total_cmp(&b.time));
        total_in += evs.len();
        streams.insert(src, evs);
    }
    let out = ExactEngine::new(&plan).execute(&streams);
    let sigma_exact = out.len() as f64 / total_in as f64;
    let (sigma_fluid, p50) = fluid_ratio_and_delay(plan, net, dc, 400.0);
    assert!(
        (sigma_exact / e2e - 1.0).abs() < 0.02,
        "exact σ {sigma_exact} vs plan e2e {e2e}"
    );
    assert!(
        (0.93..=1.02).contains(&(sigma_fluid / e2e)),
        "fluid σ {sigma_fluid} vs plan e2e {e2e}"
    );
    assert!(
        (sigma_fluid / sigma_exact - 1.0).abs() < 0.08,
        "fluid {sigma_fluid} vs exact {sigma_exact}"
    );
    // No window: delay is transit + tick granularity only.
    assert!(
        (0.0..=5.0).contains(&p50),
        "stateless p50 delay {p50} should be transit-dominated"
    );
}

// ---------------------------------------------------------------------
// Exact engine under parallel scenario shells: the record-level engine
// is orthogonal to the parallel runtime, but the harness pins that
// running it alongside parallel fluid runs perturbs nothing.
// ---------------------------------------------------------------------

#[test]
fn parallel_fluid_runs_do_not_perturb_exact_results() {
    let (_, edges, dc) = ample_world(2);
    let sources: Vec<(SiteId, f64)> = edges.iter().map(|&e| (e, 500.0)).collect();
    let plan = events_of_interest(&sources, dc);
    let mut streams: BTreeMap<wasp_streamsim::ids::OpId, Vec<Event>> = BTreeMap::new();
    for (i, &src) in plan.sources().iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(7 + i as u64);
        let mut evs: Vec<Event> = (0..5_000)
            .map(|_| Event::new(rng.gen_range(0.0..60.0), rng.gen_range(0..64u64), 0.0))
            .collect();
        evs.sort_by(|a, b| a.time.total_cmp(&b.time));
        streams.insert(src, evs);
    }
    let before = canonical_json(&ExactEngine::new(&plan).execute(&streams));
    // Interleave a parallel fluid run…
    let (net2, edges2, dc2) = ample_world(2);
    let sources2: Vec<(SiteId, f64)> = edges2.iter().map(|&e| (e, 500.0)).collect();
    let plan2 = events_of_interest(&sources2, dc2);
    let physical2 = PhysicalPlan::initial(&plan2, dc2);
    let mut eng = Engine::new(
        net2,
        DynamicsScript::none(),
        plan2,
        physical2,
        EngineConfig::default(),
    )
    .unwrap();
    eng.set_parallelism(8);
    eng.run(120.0);
    // …and the record-level result is unchanged.
    let after = canonical_json(&ExactEngine::new(&plan).execute(&streams));
    assert_identical("exact result stability", &before, &after);
}
