//! Engine throughput: simulated-seconds per wall-second for the Top-K
//! query on the full 16-node testbed, and the monitoring snapshot
//! cost.

use criterion::{criterion_group, criterion_main, Criterion};
use wasp_netsim::prelude::*;
use wasp_streamsim::prelude::*;
use wasp_workloads::prelude::*;
use wasp_workloads::scenarios::build_engine;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    for (label, dt) in [("tick_dt_1s", 1.0), ("tick_dt_250ms", 0.25)] {
        group.bench_function(label, |b| {
            let tb = Testbed::paper(42);
            let (mut engine, _) = build_engine(
                QueryKind::TopK,
                &tb,
                DynamicsScript::none(),
                EngineConfig {
                    dt,
                    ..EngineConfig::default()
                },
            );
            engine.run(60.0); // warm-up: fill the pipeline
            b.iter(|| {
                engine.step();
                std::hint::black_box(engine.now())
            })
        });
    }
    group.bench_function("snapshot", |b| {
        let tb = Testbed::paper(42);
        let (mut engine, _) = build_engine(
            QueryKind::TopK,
            &tb,
            DynamicsScript::none(),
            EngineConfig::default(),
        );
        engine.run(60.0);
        b.iter(|| {
            engine.run(1.0);
            std::hint::black_box(engine.snapshot())
        })
    });
    group.bench_function("full_8_4_run_coarse", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig {
                dt: 1.0,
                ..ScenarioConfig::default()
            };
            std::hint::black_box(run_section_8_4(QueryKind::TopK, ControllerKind::Wasp, &cfg))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
