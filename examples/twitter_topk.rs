//! Top-K Popular Topics over the synthetic geo-tagged Twitter trace.
//!
//! Shows the trace generator's spatial/temporal properties, computes
//! the exact top-10 topics per country at record level, and then runs
//! the fluid query on the testbed with the trace's diurnal workload to
//! demonstrate WASP absorbing the daily shift.
//!
//! ```text
//! cargo run --release --example twitter_topk
//! ```

use wasp_core::prelude::*;
use wasp_netsim::prelude::*;
use wasp_streamsim::exact::top_k;
use wasp_streamsim::prelude::*;
use wasp_workloads::prelude::*;
use wasp_workloads::scenarios::build_engine;

fn main() {
    let trace = TwitterTrace::default();

    // --- Trace properties ---------------------------------------------
    println!("spatial skew (fraction of tweets per country):");
    for (c, w) in trace.country_weights().iter().enumerate() {
        let bar = "#".repeat((w * 120.0) as usize);
        println!("  country {c}: {:>5.1}% {bar}", w * 100.0);
    }
    println!("\ndiurnal factor of country 0 over one (compressed) day:");
    for i in 0..12 {
        let t = i as f64 * 150.0;
        let f = trace.diurnal_factor(0, t);
        println!(
            "  t={t:>5.0}s factor {f:.2} {}",
            "#".repeat((f * 20.0) as usize)
        );
    }

    // --- Record-level top-k ---------------------------------------------
    let events = trace.events(0, 30_000, 300.0);
    let top = top_k(&events, 30.0, 10);
    println!(
        "\nexact top-10 topics for country 0: {} results over {} windows",
        top.len(),
        10
    );
    let first_window: Vec<&wasp_streamsim::exact::Event> =
        top.iter().filter(|e| e.time < 30.0).collect();
    println!("first window's topic frequencies (descending):");
    for e in &first_window {
        println!("  {:>5.0} occurrences", e.value);
    }

    // --- Fluid run with the diurnal workload ---------------------------
    println!("\nrunning Top-K on the testbed under the diurnal workload…");
    let tb = Testbed::paper(42);
    let script = trace.workload_script(tb.edges(), 1800.0);
    let (mut engine, e2e) = build_engine(
        QueryKind::TopK,
        &tb,
        script,
        EngineConfig {
            dt: 0.25,
            ..EngineConfig::default()
        },
    );
    let mut wasp = WaspController::new(PolicyConfig::default());
    run_controlled(&mut engine, &mut wasp, 1800.0, 40.0);
    let m = engine.metrics();
    println!(
        "WASP: mean delay {:.1}s, p95 {:.1}s, delivered {:.1}% of expected",
        m.mean_delay().unwrap_or(0.0),
        m.delay_quantile(0.95).unwrap_or(0.0),
        100.0 * m.total_delivered() / (m.total_generated() * e2e)
    );
    for (t, a) in m.actions() {
        if !a.starts_with("transition") {
            println!("  adaptation at t={t:.0}: {a}");
        }
    }
}
