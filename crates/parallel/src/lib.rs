//! # wasp-parallel — deterministic fork/join primitives
//!
//! The WASP reproduction parallelises two layers — per-operator work
//! inside one `Engine::step` and whole scenario runs inside
//! `wasp-bench` — and in both the contract is the same: **results must
//! be bit-identical to the sequential path regardless of thread
//! count**. The building block behind that contract is an *ordered
//! parallel map*: tasks are computed on worker threads in whatever
//! order the scheduler picks, but results come back indexed by input
//! position, so any subsequent reduce observes them in exactly the
//! sequential order.
//!
//! The implementation uses only `std::thread::scope` (no external
//! dependency, no `unsafe`): callers may borrow from the stack across
//! the fork because every worker is joined before [`map_ordered`]
//! returns.
//!
//! Thread counts are resolved with rayon-compatible semantics so CI
//! matrices can drive the whole stack via `RAYON_NUM_THREADS` (or the
//! project-specific `WASP_JOBS`) without plumbing flags everywhere —
//! see [`resolve_jobs`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::Mutex;

/// Environment variable consulted first when resolving a job count.
pub const JOBS_ENV: &str = "WASP_JOBS";
/// Fallback environment variable, honoured for rayon compatibility.
pub const RAYON_ENV: &str = "RAYON_NUM_THREADS";

/// Resolves the worker count for a parallel region.
///
/// Precedence: an explicit non-zero request wins; `Some(0)` means
/// "auto" (all available cores); otherwise `WASP_JOBS`, then
/// `RAYON_NUM_THREADS` (where `0` again means auto); otherwise `1`
/// (sequential). The result is always at least 1, so the value can be
/// passed straight to [`map_ordered`].
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    match explicit {
        Some(0) => available_jobs(),
        Some(n) => n,
        None => env_jobs().unwrap_or(1),
    }
}

/// Reads the job count from the environment (`WASP_JOBS` first, then
/// `RAYON_NUM_THREADS`); `0` means "all available cores". Returns
/// `None` when neither variable is set to a parseable value.
pub fn env_jobs() -> Option<usize> {
    for var in [JOBS_ENV, RAYON_ENV] {
        if let Ok(s) = std::env::var(var) {
            if let Ok(n) = s.trim().parse::<usize>() {
                return Some(if n == 0 { available_jobs() } else { n });
            }
        }
    }
    None
}

/// Number of hardware threads available to the process (at least 1).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Applies `f` to every item and returns the results **in input
/// order**, computing on up to `jobs` worker threads.
///
/// Determinism contract: as long as `f` is a pure function of its
/// item, the returned vector is bit-identical to
/// `items.into_iter().map(f).collect()` for every `jobs` value —
/// scheduling only changes *when* each result is computed, never
/// *where* it lands. With `jobs <= 1` (or fewer than two items) the
/// closure runs inline on the caller's thread, so the sequential path
/// is literally the same code.
pub fn map_ordered<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate().collect::<Vec<_>>());
    // Hand work out from the front so early tasks start first; each
    // worker tags results with the input index and the single merge
    // below restores sequential order exactly.
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(n);
    let sink = Mutex::new(&mut tagged);
    let workers = jobs.min(n);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let next = {
                        let mut q = queue.lock().expect("work queue poisoned");
                        if q.is_empty() {
                            None
                        } else {
                            Some(q.remove(0))
                        }
                    };
                    match next {
                        Some((idx, item)) => local.push((idx, f(item))),
                        None => break,
                    }
                }
                sink.lock().expect("result sink poisoned").extend(local);
            });
        }
    });
    tagged.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results_match_sequential_for_every_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = map_ordered(items.clone(), jobs, |x| x * x + 1);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_ordered(empty, 8, |x| x).is_empty());
        assert_eq!(map_ordered(vec![41], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn borrows_from_the_caller_stack() {
        let base = [10.0f64, 20.0, 30.0];
        let out = map_ordered(vec![0usize, 1, 2], 2, |i| base[i] * 2.0);
        assert_eq!(out, vec![20.0, 40.0, 60.0]);
    }

    #[test]
    fn resolve_jobs_precedence() {
        assert_eq!(resolve_jobs(Some(5)), 5);
        assert!(resolve_jobs(Some(0)) >= 1);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn float_reduction_is_bit_stable_across_thread_counts() {
        // The ordered merge means a subsequent sequential fold sees
        // results in input order, so even non-associative float
        // accumulation is bit-identical for any jobs value.
        let items: Vec<f64> = (1..500).map(|i| 1.0 / i as f64).collect();
        let fold = |jobs: usize| -> f64 {
            map_ordered(items.clone(), jobs, |x| x.sin())
                .into_iter()
                .fold(0.0, |acc, x| acc + x)
        };
        let seq = fold(1);
        for jobs in [2, 8] {
            assert_eq!(fold(jobs).to_bits(), seq.to_bits(), "jobs={jobs}");
        }
    }
}
