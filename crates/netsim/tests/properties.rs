//! Property-based tests for the network substrate: max-min fairness
//! invariants, trace algebra, and statistics helpers.

use proptest::prelude::*;
use wasp_netsim::network::{FlowDemand, Network};
use wasp_netsim::site::{SiteId, SiteKind};
use wasp_netsim::stats::{quantile, summarize, Zipf};
use wasp_netsim::topology::TopologyBuilder;
use wasp_netsim::trace::FactorSeries;
use wasp_netsim::units::{Mbps, MegaBytes, Millis, SimTime};

/// A small fully-connected network with the given uniform capacity.
fn network(n_sites: u16, capacity: f64) -> Network {
    let mut b = TopologyBuilder::new();
    for i in 0..n_sites {
        b.add_site(format!("s{i}"), SiteKind::DataCenter, 4);
    }
    b.set_all_links(Mbps(capacity), Millis(10.0));
    Network::new(b.build().expect("valid topology"))
}

fn flow_strategy(n_sites: u16) -> impl Strategy<Value = FlowDemand> {
    (0..n_sites, 0..n_sites, 0.0f64..50.0)
        .prop_map(|(a, b, d)| FlowDemand::new(SiteId(a), SiteId(b), Mbps(d)))
}

proptest! {
    /// Max-min allocation never exceeds a flow's demand nor any link's
    /// capacity, and never goes negative.
    #[test]
    fn allocation_respects_demand_and_capacity(
        flows in proptest::collection::vec(flow_strategy(4), 1..20),
        capacity in 1.0f64..100.0,
    ) {
        let net = network(4, capacity);
        let rates = net.allocate(&flows, SimTime::ZERO);
        prop_assert_eq!(rates.len(), flows.len());
        for (f, r) in flows.iter().zip(&rates) {
            prop_assert!(r.0 >= -1e-9);
            prop_assert!(r.0 <= f.demand.0 + 1e-6);
        }
        for a in 0..4u16 {
            for b in 0..4u16 {
                if a == b { continue; }
                let used: f64 = flows.iter().zip(&rates)
                    .filter(|(f, _)| f.from == SiteId(a) && f.to == SiteId(b))
                    .map(|(_, r)| r.0)
                    .sum();
                prop_assert!(used <= capacity + 1e-6, "link {a}->{b} used {used}");
            }
        }
    }

    /// Max-min allocations are Pareto-efficient on congested links: if
    /// a flow got less than its demand, its link is (near) saturated.
    #[test]
    fn unsatisfied_flows_sit_on_saturated_links(
        flows in proptest::collection::vec(flow_strategy(3), 1..12),
        capacity in 1.0f64..40.0,
    ) {
        let net = network(3, capacity);
        let rates = net.allocate(&flows, SimTime::ZERO);
        for (i, (f, r)) in flows.iter().zip(&rates).enumerate() {
            if f.from == f.to { continue; }
            if r.0 + 1e-6 < f.demand.0 {
                let used: f64 = flows.iter().zip(&rates)
                    .filter(|(g, _)| g.from == f.from && g.to == f.to)
                    .map(|(_, r)| r.0)
                    .sum();
                prop_assert!(
                    used + 1e-6 >= capacity,
                    "flow {i} starved on unsaturated link ({used} < {capacity})"
                );
            }
        }
    }

    /// Combining factor series is pointwise multiplication on the
    /// combined series' own sample grid (a zero-order-hold resampling
    /// cannot represent change points that fall between grid points,
    /// so off-grid equality is not guaranteed in general).
    #[test]
    fn factor_series_combine_is_pointwise_product(
        a_samples in proptest::collection::vec(0.1f64..3.0, 1..20),
        b_samples in proptest::collection::vec(0.1f64..3.0, 1..20),
        a_int in 1u32..60,
        b_int in 1u32..60,
        idx in 0usize..64,
    ) {
        let a = FactorSeries::from_samples(a_int as f64, a_samples);
        let b = FactorSeries::from_samples(b_int as f64, b_samples);
        let c = a.combine(&b);
        let grid = if c.interval_s().is_finite() { c.interval_s() } else { 1.0 };
        // Probe mid-cell: ZOH equality holds away from cell edges.
        let t = SimTime((idx as f64 + 0.5) * grid);
        let expected = a.factor_at(t) * b.factor_at(t);
        prop_assert!((c.factor_at(t) - expected).abs() < 1e-9,
            "combine mismatch at {t}: {} vs {expected}", c.factor_at(t));
    }

    /// Transfer time scales linearly in volume and inversely in
    /// bandwidth.
    #[test]
    fn transfer_time_scaling(mb in 0.1f64..1000.0, bw in 0.1f64..500.0) {
        let t = MegaBytes(mb).transfer_time(Mbps(bw));
        let t2 = MegaBytes(2.0 * mb).transfer_time(Mbps(bw));
        let th = MegaBytes(mb).transfer_time(Mbps(2.0 * bw));
        prop_assert!((t2 - 2.0 * t).abs() < 1e-6);
        prop_assert!((th - t / 2.0).abs() < 1e-6);
    }

    /// Zipf PMFs are normalized and monotone non-increasing in rank.
    #[test]
    fn zipf_pmf_invariants(n in 1usize..200, alpha in 0.0f64..3.0) {
        let z = Zipf::new(n, alpha);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.pmf(k - 1) + 1e-12 >= z.pmf(k));
        }
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantile_invariants(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = quantile(&xs, lo).unwrap();
        let b = quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
        let s = summarize(&xs).unwrap();
        prop_assert!(a >= s.min - 1e-9 && b <= s.max + 1e-9);
    }
}
