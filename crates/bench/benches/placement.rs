//! Placement-ILP solver performance (§4.1): build + solve across
//! parallelism values and site counts, plus the scale-out search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use wasp_netsim::prelude::*;
use wasp_optimizer::placement::{PlacementProblem, PlacementRequest};

fn request(tb: &Testbed, p: u32) -> PlacementRequest {
    let mut req = PlacementRequest::new(p);
    req.upstream = tb.edges().iter().map(|&e| (e, 1.6)).collect();
    req.downstream = vec![(tb.data_centers()[0], 0.2)];
    let mut slots = BTreeMap::new();
    for s in tb.topology().site_ids() {
        slots.insert(s, tb.topology().site(s).slots());
    }
    req.available_slots = slots;
    req
}

fn bench_placement(c: &mut Criterion) {
    let tb = Testbed::paper(42);
    let net = tb.static_network();
    let mut group = c.benchmark_group("placement_ilp");
    for p in [1u32, 4, 16] {
        let req = request(&tb, p);
        group.bench_with_input(BenchmarkId::new("build_and_solve", p), &p, |b, _| {
            b.iter(|| {
                let problem = PlacementProblem::build(&req, &net, SimTime::ZERO);
                std::hint::black_box(problem.solve())
            })
        });
    }
    let req = request(&tb, 1);
    group.bench_function("exhaustive_reference_p4", |b| {
        let mut r = req.clone();
        r.parallelism = 4;
        let problem = PlacementProblem::build(&r, &net, SimTime::ZERO);
        b.iter(|| std::hint::black_box(problem.solve_exhaustive()))
    });
    group.bench_function("scale_out_search", |b| {
        b.iter(|| {
            std::hint::black_box(PlacementProblem::minimal_feasible_parallelism(
                &req,
                &net,
                SimTime::ZERO,
                1,
                8,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_placement);
criterion_main!(benches);
