//! A mergeable, weighted, log-bucketed streaming histogram.
//!
//! The bucket scheme is the relative-error sketch of DDSketch: with
//! accuracy parameter `α`, value `v > 0` lands in bucket
//! `i = ⌈log_γ v⌉` where `γ = (1 + α) / (1 − α)`, and bucket `i` is
//! reported as `2 γ^i / (γ + 1)` — the mid-point of `(γ^{i−1}, γ^i]`
//! in relative terms. Any quantile estimate is therefore within a
//! factor `α` of some true sample, regardless of how many samples were
//! folded in: memory is O(buckets), not O(samples).
//!
//! The default `α = 0.005` gives a guaranteed ≤ 0.5 % relative error,
//! comfortably inside the ≤ 1 % target, while covering ~17 decades of
//! dynamic range in the default 4096-bucket budget (ln-range
//! `4096 × ln γ ≈ 41`). Values below [`LogHistogram::MIN_TRACKABLE`]
//! (including exact zeros) go to a dedicated zero bucket; values
//! beyond the bucket budget are clamped into the edge buckets, with
//! the exact `min`/`max` retained so the tails never report values
//! outside the observed range.

use serde::{Deserialize, Serialize};

/// Streaming weighted histogram with bounded memory and bounded
/// relative quantile error.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Accuracy parameter α: quantile estimates are within a relative
    /// factor α of a true sample.
    alpha: f64,
    /// γ = (1 + α) / (1 − α).
    gamma: f64,
    /// 1 / ln γ, precomputed for the hot `observe` path.
    inv_log_gamma: f64,
    /// Bucket index of `buckets[0]` (indices may be negative: bucket
    /// `i` covers `(γ^{i−1}, γ^i]`).
    offset: i64,
    /// Per-bucket accumulated weight.
    buckets: Vec<f64>,
    /// Weight of values `≤ MIN_TRACKABLE` (incl. exact zeros).
    zero_weight: f64,
    /// Total accumulated weight.
    total_weight: f64,
    /// Exact weighted sum (for the exact mean).
    sum: f64,
    /// Exact smallest observed value (0 when empty).
    min: f64,
    /// Exact largest observed value (0 when empty).
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new(LogHistogram::DEFAULT_ALPHA)
    }
}

impl LogHistogram {
    /// Default accuracy: ≤ 0.5 % relative error.
    pub const DEFAULT_ALPHA: f64 = 0.005;
    /// Values at or below this threshold share the zero bucket.
    pub const MIN_TRACKABLE: f64 = 1e-9;
    /// Bucket budget; beyond it, outliers clamp into the edge buckets.
    pub const MAX_BUCKETS: usize = 4096;

    /// Creates an empty histogram with relative accuracy `alpha`
    /// (clamped to a sane `(0, 0.5]` range).
    pub fn new(alpha: f64) -> LogHistogram {
        let alpha = if alpha.is_finite() {
            alpha.clamp(1e-4, 0.5)
        } else {
            LogHistogram::DEFAULT_ALPHA
        };
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        LogHistogram {
            alpha,
            gamma,
            inv_log_gamma: 1.0 / gamma.ln(),
            offset: 0,
            buckets: Vec::new(),
            zero_weight: 0.0,
            total_weight: 0.0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }

    /// The accuracy parameter this histogram was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.total_weight <= 0.0
    }

    /// Total observed weight (the event count for weighted streams).
    pub fn count(&self) -> f64 {
        self.total_weight
    }

    /// Exact weighted sum of observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact weighted mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.sum / self.total_weight)
        }
    }

    /// Exact minimum observed value, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.min)
        }
    }

    /// Exact maximum observed value, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.max)
        }
    }

    /// Number of allocated buckets (diagnostic; bounded by
    /// [`LogHistogram::MAX_BUCKETS`]).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Folds in `value` with weight `weight`. Non-positive weights and
    /// NaN values are ignored (a NaN-poisoned stream degrades, it does
    /// not panic); negative values clamp to zero.
    pub fn observe(&mut self, value: f64, weight: f64) {
        if weight.is_nan() || weight <= 0.0 || value.is_nan() {
            return;
        }
        let v = if value > 0.0 { value } else { 0.0 };
        if self.total_weight <= 0.0 {
            self.min = v;
            self.max = v;
        } else {
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
        }
        self.total_weight += weight;
        self.sum += v * weight;
        if v <= LogHistogram::MIN_TRACKABLE {
            self.zero_weight += weight;
        } else {
            let idx = (v.ln() * self.inv_log_gamma).ceil() as i64;
            self.add_bucket(idx, weight);
        }
    }

    /// Adds `weight` to bucket `idx`, growing the contiguous bucket
    /// vector as needed and clamping into the edge buckets once the
    /// [`LogHistogram::MAX_BUCKETS`] budget is exhausted.
    fn add_bucket(&mut self, idx: i64, weight: f64) {
        if self.buckets.is_empty() {
            self.offset = idx;
            self.buckets.push(weight);
            return;
        }
        let hi = self.offset + self.buckets.len() as i64 - 1;
        let idx = if idx < self.offset {
            let grow = (self.offset - idx) as usize;
            if self.buckets.len() + grow > LogHistogram::MAX_BUCKETS {
                self.offset
            } else {
                let mut grown = vec![0.0; self.buckets.len() + grow];
                grown[grow..].copy_from_slice(&self.buckets);
                self.buckets = grown;
                self.offset = idx;
                idx
            }
        } else if idx > hi {
            let grow = (idx - hi) as usize;
            if self.buckets.len() + grow > LogHistogram::MAX_BUCKETS {
                hi
            } else {
                self.buckets.resize(self.buckets.len() + grow, 0.0);
                idx
            }
        } else {
            idx
        };
        self.buckets[(idx - self.offset) as usize] += weight;
    }

    /// The reported value for bucket `idx`: `2 γ^idx / (γ + 1)`.
    fn bucket_value(&self, idx: i64) -> f64 {
        2.0 * self.gamma.powi(idx as i32) / (self.gamma + 1.0)
    }

    /// Weighted quantile estimate for `q ∈ [0, 1]`, `None` when empty.
    /// The estimate is within relative error α of a true sample and is
    /// clamped to the exact observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.total_weight;
        if target <= 0.0 {
            return Some(self.min);
        }
        if target >= self.total_weight {
            return Some(self.max);
        }
        let mut acc = self.zero_weight;
        if acc >= target {
            // The q-th sample sits in the zero bucket: its true value
            // is ≤ MIN_TRACKABLE, and `min` is an exact such value.
            return Some(self.min.min(LogHistogram::MIN_TRACKABLE));
        }
        for (j, &w) in self.buckets.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            acc += w;
            if acc >= target {
                let est = self.bucket_value(self.offset + j as i64);
                return Some(est.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// `(value, cumulative fraction)` pairs at `points` evenly spaced
    /// quantiles — a down-sampled CDF, monotone in both coordinates.
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        if self.is_empty() || points == 0 {
            return Vec::new();
        }
        (0..points)
            .map(|i| {
                let q = (i as f64 + 0.5) / points as f64;
                (self.quantile(q).unwrap_or(self.max), q)
            })
            .collect()
    }

    /// Folds `other` into `self`. Both histograms must share the same
    /// α (the registry only hands out a single scheme, so a mismatch
    /// is a programming error).
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge histograms with different accuracy (α {} vs {})",
            self.alpha,
            other.alpha
        );
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.total_weight += other.total_weight;
        self.sum += other.sum;
        self.zero_weight += other.zero_weight;
        for (j, &w) in other.buckets.iter().enumerate() {
            if w > 0.0 {
                self.add_bucket(other.offset + j as i64, w);
            }
        }
    }

    /// Non-empty buckets as `(upper_bound, weight)` pairs in ascending
    /// order, with the zero bucket first — the raw material for
    /// Prometheus `_bucket{le=...}` exposition.
    pub fn nonzero_buckets(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        if self.zero_weight > 0.0 {
            out.push((LogHistogram::MIN_TRACKABLE, self.zero_weight));
        }
        for (j, &w) in self.buckets.iter().enumerate() {
            if w > 0.0 {
                let idx = self.offset + j as i64;
                out.push((self.gamma.powi(idx as i32), w));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_none() {
        let h = LogHistogram::default();
        assert!(h.is_empty());
        assert!(h.quantile(0.5).is_none());
        assert!(h.mean().is_none());
        assert!(h.min().is_none());
        assert!(h.max().is_none());
        assert!(h.cdf(10).is_empty());
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let mut h = LogHistogram::default();
        h.observe(3.7, 2.0);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((v - 3.7).abs() <= 3.7 * 0.01, "q={q} v={v}");
        }
        assert_eq!(h.min(), Some(3.7));
        assert_eq!(h.max(), Some(3.7));
        assert_eq!(h.count(), 2.0);
    }

    #[test]
    fn quantiles_stay_within_relative_error() {
        let mut h = LogHistogram::new(0.005);
        // Geometric sweep over 8 decades.
        let mut v = 1e-3;
        while v < 1e5 {
            h.observe(v, 1.0);
            v *= 1.01;
        }
        for q in [0.01, 0.1, 0.5, 0.9, 0.95, 0.99] {
            let est = h.quantile(q).unwrap();
            // The estimate must be within α of *some* observed value;
            // with a 1 % geometric grid this bounds the error at ~1.5 %.
            assert!((1e-3 * 0.98..=1e5 * 1.02).contains(&est), "q={q} est={est}");
        }
    }

    #[test]
    fn weighted_quantile_matches_exact_split() {
        let mut h = LogHistogram::default();
        h.observe(1.0, 90.0);
        h.observe(10.0, 10.0);
        let p50 = h.quantile(0.5).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        assert!((p50 - 1.0).abs() <= 0.01, "p50={p50}");
        assert!((p95 - 10.0).abs() <= 0.1, "p95={p95}");
        assert!((h.mean().unwrap() - 1.9).abs() < 1e-9);
    }

    #[test]
    fn zeros_and_negatives_share_the_zero_bucket() {
        let mut h = LogHistogram::default();
        h.observe(0.0, 5.0);
        h.observe(-3.0, 5.0);
        h.observe(2.0, 10.0);
        assert_eq!(h.min(), Some(0.0));
        let p25 = h.quantile(0.25).unwrap();
        assert!(p25 <= LogHistogram::MIN_TRACKABLE, "p25={p25}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 2.0).abs() <= 0.02, "p90={p90}");
    }

    #[test]
    fn nan_and_nonpositive_weights_are_ignored() {
        let mut h = LogHistogram::default();
        h.observe(f64::NAN, 1.0);
        h.observe(1.0, 0.0);
        h.observe(1.0, -2.0);
        h.observe(1.0, f64::NAN);
        assert!(h.is_empty());
        h.observe(1.0, 1.0);
        assert_eq!(h.count(), 1.0);
        assert!(h.quantile(0.5).unwrap().is_finite());
    }

    #[test]
    fn extreme_values_clamp_but_keep_exact_min_max() {
        let mut h = LogHistogram::default();
        h.observe(1.0, 1.0);
        h.observe(1e300, 1.0);
        h.observe(1e-300, 1.0);
        assert!(h.bucket_count() <= LogHistogram::MAX_BUCKETS);
        assert_eq!(h.max(), Some(1e300));
        assert_eq!(h.min(), Some(1e-300));
        // Tail quantiles clamp to the exact extremes.
        assert_eq!(h.quantile(1.0), Some(1e300));
        assert_eq!(h.quantile(0.0), Some(1e-300));
    }

    #[test]
    fn merge_equals_single_stream() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        let mut whole = LogHistogram::default();
        for i in 1..=1000u32 {
            let v = (i as f64) * 0.037;
            if i % 2 == 0 {
                a.observe(v, 1.0);
            } else {
                b.observe(v, 1.0);
            }
            whole.observe(v, 1.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.sum() - whole.sum()).abs() < 1e-9);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let merged = a.quantile(q).unwrap();
            let single = whole.quantile(q).unwrap();
            assert!(
                (merged - single).abs() <= single * 1e-9,
                "q={q}: merged={merged} single={single}"
            );
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let mut h = LogHistogram::default();
        for i in 1..=100 {
            h.observe(i as f64 / 10.0, 1.0);
        }
        let cdf = h.cdf(20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn serde_roundtrip_preserves_quantiles() {
        let mut h = LogHistogram::default();
        for i in 1..=50 {
            h.observe(i as f64, 2.0);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: LogHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.quantile(0.5), h.quantile(0.5));
        assert_eq!(back.quantile(0.99), h.quantile(0.99));
    }

    #[test]
    fn memory_stays_bounded_under_heavy_load() {
        let mut h = LogHistogram::default();
        for i in 0..200_000u64 {
            h.observe((i % 5000) as f64 * 0.01 + 0.001, 1.0);
        }
        assert!(h.bucket_count() <= LogHistogram::MAX_BUCKETS);
        assert_eq!(h.count(), 200_000.0);
    }
}
