//! Golden-file byte-stability of the `wasp-report` binary under
//! engine parallelism.
//!
//! The differential suite (`crates/streamsim/tests/differential.rs`)
//! proves bit-identity of the in-process recordings; this test proves
//! the same property at the outermost observable boundary — the bytes
//! the shipped binary writes to disk. One scenario, seed 4, rendered
//! at `--jobs 1` and `--jobs 8`, must produce byte-equal report,
//! JSONL event log, and Chrome trace files; and a second `--jobs 8`
//! run must reproduce itself exactly (no run-to-run wobble from
//! thread scheduling).

use std::path::{Path, PathBuf};
use std::process::Command;

/// Output bundle of one `wasp-report` invocation.
struct ReportFiles {
    report: Vec<u8>,
    jsonl: Vec<u8>,
    trace: Vec<u8>,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("wasp-parallel-golden-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `wasp-report` on the §8.4 top-k scenario at seed 4 with the
/// given engine parallelism and returns the three output files.
/// `dt = 2.0` keeps the debug-profile run short; the byte-identity
/// claim is dt-independent.
fn run_report(dir: &Path, jobs: usize) -> ReportFiles {
    let report = dir.join(format!("report-j{jobs}.txt"));
    let jsonl = dir.join(format!("events-j{jobs}.jsonl"));
    let trace = dir.join(format!("trace-j{jobs}.json"));
    let status = Command::new(env!("CARGO_BIN_EXE_wasp-report"))
        .args([
            "--scenario",
            "section_8_4",
            "--query",
            "topk",
            "--seed",
            "4",
            "--dt",
            "2.0",
            "--jobs",
            &jobs.to_string(),
            "--report",
        ])
        .arg(&report)
        .arg("--jsonl")
        .arg(&jsonl)
        .arg("--trace-out")
        .arg(&trace)
        // The binary must not pick up ambient thread-count overrides:
        // the test's `--jobs` flag is the only variable.
        .env_remove("WASP_JOBS")
        .env_remove("RAYON_NUM_THREADS")
        .env_remove("WASP_SCENARIO_SEED")
        .status()
        .expect("spawn wasp-report");
    assert!(
        status.success(),
        "wasp-report --jobs {jobs} failed: {status}"
    );
    ReportFiles {
        report: std::fs::read(&report).expect("read report"),
        jsonl: std::fs::read(&jsonl).expect("read jsonl"),
        trace: std::fs::read(&trace).expect("read trace"),
    }
}

fn assert_same(what: &str, a: &[u8], b: &[u8]) {
    if a == b {
        return;
    }
    let pos = a
        .iter()
        .zip(b.iter())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    panic!(
        "{what}: outputs differ at byte {pos} (lengths {} vs {})",
        a.len(),
        b.len()
    );
}

#[test]
fn wasp_report_output_is_byte_stable_across_jobs() {
    let dir = scratch_dir("jobs");
    let sequential = run_report(&dir, 1);
    let parallel = run_report(&dir, 8);
    assert!(
        !sequential.report.is_empty() && !sequential.jsonl.is_empty(),
        "report ran but produced empty outputs"
    );
    assert_same(
        "audit report (--jobs 1 vs 8)",
        &sequential.report,
        &parallel.report,
    );
    assert_same(
        "jsonl event log (--jobs 1 vs 8)",
        &sequential.jsonl,
        &parallel.jsonl,
    );
    assert_same(
        "chrome trace (--jobs 1 vs 8)",
        &sequential.trace,
        &parallel.trace,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wasp_report_parallel_run_reproduces_itself() {
    let dir = scratch_dir("rerun");
    let first = run_report(&dir, 8);
    let second = run_report(&dir, 8);
    assert_same("audit report (re-run)", &first.report, &second.report);
    assert_same("jsonl event log (re-run)", &first.jsonl, &second.jsonl);
    assert_same("chrome trace (re-run)", &first.trace, &second.trace);
    let _ = std::fs::remove_dir_all(&dir);
}
