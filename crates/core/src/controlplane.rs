//! Controller-side state for the lossy control plane.
//!
//! In oracle mode (the default) the WASP controller reads truth
//! failure state straight out of the engine snapshot. When a scenario
//! opts into [`ControlPlaneConfig::Lossy`], the controller instead
//! runs the machinery in this module:
//!
//! * a φ-style [`FailureDetector`] fed only by heartbeats that
//!   survived the simulated WAN — detection is *inferred*, with
//!   measurable lag, false positives under partitions and false
//!   negatives under flapping;
//! * a [`RetryQueue`] that re-sends unacked commands with exponential
//!   backoff (the per-command generalization of the oracle path's
//!   global emergency backoff) and gives up when the plan has moved on;
//! * a monotonically increasing *controller epoch*, bumped at the
//!   start of every lossy monitoring round, that fences stale or
//!   reordered commands at the engine;
//! * a truth ledger used **only for measurement**: the controller's
//!   decisions never read it, but detector verdicts are scored
//!   against it (detection lag, FP/FN counters).
//!
//! [`ControlPlaneConfig::Lossy`]: wasp_controlplane::config::ControlPlaneConfig

use std::collections::BTreeMap;

use wasp_controlplane::config::LossyControlConfig;
use wasp_controlplane::detector::FailureDetector;
use wasp_controlplane::retry::{RetryPolicy, RetryQueue};
use wasp_metrics::{Counter, Histogram, MetricsHub};
use wasp_netsim::site::SiteId;
use wasp_streamsim::engine::Command;

/// Instrument handles for the controller side of the lossy control
/// plane (present only when a metrics hub is attached).
#[derive(Debug)]
pub(crate) struct ControlPlaneMetrics {
    /// Truth-failure → detector-confirmation lag.
    pub(crate) detector_lag: Histogram,
    /// Confirmations with no matching truth outage.
    pub(crate) false_positives: Counter,
    /// Truth outages that healed before the detector confirmed them.
    pub(crate) false_negatives: Counter,
    /// Command re-sends after ack timeouts.
    pub(crate) retries: Counter,
    /// Commands abandoned (attempts exhausted or plan moved on).
    pub(crate) gave_up: Counter,
    /// Controller-observed submit → ack round-trip time.
    pub(crate) command_rtt: Histogram,
}

impl ControlPlaneMetrics {
    pub(crate) fn build(hub: &MetricsHub) -> ControlPlaneMetrics {
        ControlPlaneMetrics {
            detector_lag: hub.histogram(
                "wasp_detector_lag_seconds",
                "Seconds from a truth site failure to the detector confirming it",
                &[],
            ),
            false_positives: hub.counter(
                "wasp_detector_false_positives_total",
                "Detector confirmations of sites that were actually alive",
                &[],
            ),
            false_negatives: hub.counter(
                "wasp_detector_false_negatives_total",
                "Truth site outages that healed before the detector confirmed them",
                &[],
            ),
            retries: hub.counter(
                "wasp_control_retries_total",
                "Control commands re-sent after an ack timeout",
                &[],
            ),
            gave_up: hub.counter(
                "wasp_control_gave_up_total",
                "Control commands abandoned after exhausting retries",
                &[],
            ),
            command_rtt: hub.histogram(
                "wasp_control_command_rtt_seconds",
                "Controller-observed round-trip time from submission to ack",
                &[],
            ),
        }
    }
}

/// A truth outage being scored against the detector.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TruthOutage {
    /// Truth failure time (sim seconds).
    pub(crate) down_at: f64,
    /// Whether the detector confirmed it before it healed.
    pub(crate) confirmed: bool,
}

/// Plain counters mirroring the control-plane metric instruments,
/// always kept (hub or not)
/// so tests and reports can read detector accuracy without a
/// recording hub.
#[derive(Debug, Default, Clone)]
pub struct ControlPlaneStats {
    /// Detector confirmations matching a truth outage.
    pub true_confirmations: u64,
    /// Detector confirmations of sites that were actually alive.
    pub false_positives: u64,
    /// Truth outages that healed before the detector confirmed them.
    pub false_negatives: u64,
    /// Truth-failure → confirmation lags, one per true confirmation.
    pub detection_lags_s: Vec<f64>,
    /// Commands handed to the lossy channel (first sends only).
    pub enqueued: u64,
    /// Re-sends after ack timeouts.
    pub retries: u64,
    /// Commands abandoned.
    pub gave_up: u64,
    /// Acks received with `applied == true`.
    pub acked_applied: u64,
}

impl ControlPlaneStats {
    /// Detection-lag quantile (`q` in `[0, 1]`) over the lags observed
    /// so far, or `None` before the first true confirmation.
    pub fn detection_lag_quantile(&self, q: f64) -> Option<f64> {
        if self.detection_lags_s.is_empty() {
            return None;
        }
        let mut lags = self.detection_lags_s.clone();
        lags.sort_by(|a, b| a.total_cmp(b));
        let idx = ((lags.len() as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
        Some(lags[idx])
    }
}

/// Everything the controller tracks when driving a lossy control
/// plane. Absent (`None`) in oracle mode.
#[derive(Debug)]
pub(crate) struct LossyControl {
    pub(crate) cfg: LossyControlConfig,
    pub(crate) detector: FailureDetector,
    pub(crate) retry: RetryQueue<Command>,
    /// Controller epoch; bumped at the start of every lossy round so
    /// commands from earlier rounds can be fenced at the engine.
    pub(crate) epoch: u64,
    /// Next command id.
    pub(crate) next_id: u64,
    /// Whether sites have been registered at the detector.
    pub(crate) initialized: bool,
    /// Truth outages being scored (measurement only, never decisions).
    pub(crate) truth_down: BTreeMap<SiteId, TruthOutage>,
    pub(crate) stats: ControlPlaneStats,
    pub(crate) cpm: Option<ControlPlaneMetrics>,
}

impl LossyControl {
    pub(crate) fn new(cfg: LossyControlConfig) -> LossyControl {
        let detector = FailureDetector::new(cfg.heartbeat_period_s, cfg.phi_threshold);
        let retry = RetryQueue::new(RetryPolicy {
            ack_timeout_s: cfg.ack_timeout_s,
            max_attempts: cfg.max_attempts,
            ..RetryPolicy::default()
        });
        LossyControl {
            cfg,
            detector,
            retry,
            epoch: 0,
            next_id: 0,
            initialized: false,
            truth_down: BTreeMap::new(),
            stats: ControlPlaneStats::default(),
            cpm: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_quantile_over_lags() {
        let mut s = ControlPlaneStats::default();
        assert_eq!(s.detection_lag_quantile(0.95), None);
        s.detection_lags_s = vec![50.0, 10.0, 30.0, 20.0, 40.0];
        assert_eq!(s.detection_lag_quantile(0.0), Some(10.0));
        assert_eq!(s.detection_lag_quantile(0.5), Some(30.0));
        assert_eq!(s.detection_lag_quantile(1.0), Some(50.0));
    }

    #[test]
    fn lossy_control_adopts_config_knobs() {
        let cfg = LossyControlConfig {
            ack_timeout_s: 12.0,
            max_attempts: 3,
            ..LossyControlConfig::default()
        };
        let lc = LossyControl::new(cfg);
        assert_eq!(lc.epoch, 0);
        assert!(lc.retry.is_empty());
        assert!(!lc.initialized);
    }
}
