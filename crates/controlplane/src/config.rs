//! Control-plane configuration.
//!
//! `Oracle` is the historical (and default) mode: the controller reads
//! truth `SiteDown`/`SiteRestored` events out of the engine snapshot
//! and `engine.apply` is an instantaneous, reliable function call.
//! `Lossy` threads every control message through the simulated WAN.

use serde::{Deserialize, Serialize};
use wasp_netsim::site::SiteId;

/// Which control-plane model a scenario runs under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum ControlPlaneConfig {
    /// Perfect knowledge and delivery (the paper's implicit model).
    /// All existing golden / differential / byte-identity results are
    /// produced under this mode.
    #[default]
    Oracle,
    /// Heartbeat-based failure detection plus lossy, delayed,
    /// reorderable command delivery with epoch fencing.
    Lossy(LossyControlConfig),
}

impl ControlPlaneConfig {
    /// True when this is the lossy (fallible) control plane.
    pub fn is_lossy(&self) -> bool {
        matches!(self, ControlPlaneConfig::Lossy(_))
    }
}

/// Parameters of the fallible control plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossyControlConfig {
    /// Independent drop probability applied to every control message
    /// (heartbeat, command, ack) in addition to blackouts/partitions.
    pub loss: f64,
    /// Multiplier on the topology link latency for control messages
    /// (>1.0 models a congested or deprioritized control channel).
    pub delay_factor: f64,
    /// How often every site emits a heartbeat towards the controller,
    /// in simulated seconds.
    pub heartbeat_period_s: f64,
    /// Phi threshold at which a silent site becomes `Suspected`; the
    /// site is `Confirmed` down at twice this threshold.
    pub phi_threshold: f64,
    /// How long the controller waits for a command ack before
    /// scheduling a retry.
    pub ack_timeout_s: f64,
    /// Maximum delivery attempts per command before giving up.
    pub max_attempts: u32,
    /// Seed for the control-channel loss/jitter RNG (independent of
    /// the workload and chaos seeds).
    pub seed: u64,
    /// Site hosting the controller. Control messages travel between
    /// this site and the site a command or heartbeat concerns.
    /// `None` picks the site hosting the first sink.
    pub controller_site: Option<SiteId>,
}

impl Default for LossyControlConfig {
    fn default() -> Self {
        LossyControlConfig {
            loss: 0.0,
            delay_factor: 1.0,
            heartbeat_period_s: 5.0,
            phi_threshold: 3.0,
            ack_timeout_s: 30.0,
            max_attempts: 8,
            seed: 0,
            controller_site: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_oracle() {
        assert_eq!(ControlPlaneConfig::default(), ControlPlaneConfig::Oracle);
        assert!(!ControlPlaneConfig::default().is_lossy());
    }

    #[test]
    fn lossy_defaults_are_sane() {
        let cfg = LossyControlConfig::default();
        assert_eq!(cfg.loss, 0.0);
        assert_eq!(cfg.heartbeat_period_s, 5.0);
        assert_eq!(cfg.phi_threshold, 3.0);
        assert_eq!(cfg.max_attempts, 8);
        assert!(ControlPlaneConfig::Lossy(cfg).is_lossy());
    }

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = ControlPlaneConfig::Lossy(LossyControlConfig {
            loss: 0.1,
            controller_site: Some(SiteId(2)),
            ..LossyControlConfig::default()
        });
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ControlPlaneConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
