//! The WAN-aware task-placement optimization of §4.1 (Eq. 1–5).
//!
//! WASP re-computes how many tasks of a stage to run at each site by
//! solving:
//!
//! ```text
//! min  Σ_s p[s] · (Σ_u ℓ(u→s) + Σ_d ℓ(s→d))            (1)
//! s.t. (p[s]/p) · λ̂I[u] < α · B(u→s)   ∀ s, ∀ u ≠ s     (2)
//!      (p[s]/p) · λ̂O[d] < α · B(s→d)   ∀ s, ∀ d ≠ s     (3)
//!      0 ≤ p[s] ≤ A[s]                                   (4)
//!      Σ_s p[s] = p                                      (5)
//! ```
//!
//! Unlike one-stage-at-a-time schedulers, both the *upstream* and
//! *downstream* deployments enter the objective and the constraints,
//! avoiding the cascading sub-optimality the paper describes.
//!
//! Because each `p[s]` appears alone in its constraints, the program is
//! separable: every site gets a cost `c[s]` and an upper bound
//! `ub[s]`, and the optimum is a greedy fill of the cheapest sites
//! ([`PlacementProblem::solve`]). An exhaustive solver
//! ([`PlacementProblem::solve_exhaustive`]) exists to cross-check the
//! greedy one in tests, standing in for the Gurobi solver the paper
//! used.

use std::collections::BTreeMap;
use wasp_netsim::network::Network;
use wasp_netsim::site::SiteId;
use wasp_netsim::units::SimTime;
use wasp_streamsim::physical::Placement;

/// The paper's default bandwidth-utilization headroom (§4.1).
pub const DEFAULT_ALPHA: f64 = 0.8;

/// Inputs of the placement ILP for one stage.
///
/// Stream rates are expressed in Mbps (events/s × record bytes),
/// matching the bandwidth constraints' units.
#[derive(Debug, Clone)]
pub struct PlacementRequest {
    /// Required parallelism `p` (Constraint 5).
    pub parallelism: u32,
    /// Expected inbound stream per upstream site: `(site, Mbps)`
    /// (`λ̂I` split by where the upstream tasks run).
    pub upstream: Vec<(SiteId, f64)>,
    /// Expected outbound stream per downstream site: `(site, Mbps)`.
    pub downstream: Vec<(SiteId, f64)>,
    /// Free slots per site (`A[s]`, Constraint 4). Sites absent from
    /// the map are unusable.
    pub available_slots: BTreeMap<SiteId, u32>,
    /// Bandwidth-utilization threshold α in (0, 1].
    pub alpha: f64,
    /// Bandwidth already consumed by *other* stages per directed link,
    /// Mbps — subtracted from the measured availability so co-deployed
    /// stages do not double-book a link.
    pub reserved_mbps: BTreeMap<(SiteId, SiteId), f64>,
}

impl PlacementRequest {
    /// Creates a request with the default α = 0.8.
    pub fn new(parallelism: u32) -> PlacementRequest {
        PlacementRequest {
            parallelism,
            upstream: Vec::new(),
            downstream: Vec::new(),
            available_slots: BTreeMap::new(),
            alpha: DEFAULT_ALPHA,
            reserved_mbps: BTreeMap::new(),
        }
    }
}

/// The separable form of the ILP: per-site cost and upper bound.
#[derive(Debug, Clone)]
pub struct PlacementProblem {
    sites: Vec<SiteId>,
    /// `c[s]`: summed one-way latencies to upstream and downstream
    /// sites, ms.
    costs: Vec<f64>,
    /// `ub[s]`: largest feasible `p[s]` from Constraints 2–4.
    upper_bounds: Vec<u32>,
    parallelism: u32,
}

impl PlacementProblem {
    /// Builds the separable problem from a request and the WAN Monitor
    /// view (`net` at time `t`).
    ///
    /// For every candidate site the bound from Constraint 2 is
    /// `p[s] < α·B(u→s)·p / λ̂I[u]` for each upstream site `u` (and the
    /// symmetric bound from Constraint 3); the site bound is the floor
    /// of the tightest one, further capped by the free slots `A[s]`.
    pub fn build(req: &PlacementRequest, net: &Network, t: SimTime) -> PlacementProblem {
        let p = req.parallelism.max(1) as f64;
        let mut sites = Vec::new();
        let mut costs = Vec::new();
        let mut upper_bounds = Vec::new();
        for (&site, &slots) in &req.available_slots {
            let mut cost = 0.0;
            let mut bound = slots as f64;
            for &(u, rate) in &req.upstream {
                cost += net.latency(u, site).0;
                if u != site && rate > 0.0 {
                    let reserved = req.reserved_mbps.get(&(u, site)).copied().unwrap_or(0.0);
                    let b = (net.available(u, site, t).0 - reserved).max(0.0);
                    bound = bound.min(strict_bound(req.alpha * b * p / rate));
                }
            }
            for &(d, rate) in &req.downstream {
                cost += net.latency(site, d).0;
                if d != site && rate > 0.0 {
                    let reserved = req.reserved_mbps.get(&(site, d)).copied().unwrap_or(0.0);
                    let b = (net.available(site, d, t).0 - reserved).max(0.0);
                    bound = bound.min(strict_bound(req.alpha * b * p / rate));
                }
            }
            sites.push(site);
            costs.push(cost);
            upper_bounds.push(bound.max(0.0) as u32);
        }
        PlacementProblem {
            sites,
            costs,
            upper_bounds,
            parallelism: req.parallelism,
        }
    }

    /// Candidate sites in map order.
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// Per-site latency cost `c[s]` (ms).
    pub fn cost(&self, i: usize) -> f64 {
        self.costs[i]
    }

    /// Per-site upper bound `ub[s]`.
    pub fn upper_bound(&self, i: usize) -> u32 {
        self.upper_bounds[i]
    }

    /// Total capacity `Σ ub[s]` — the problem is feasible iff this is
    /// at least `p`.
    pub fn capacity(&self) -> u32 {
        self.upper_bounds.iter().sum()
    }

    /// Exact solution by greedy fill in ascending cost (optimal for
    /// the separable program by an exchange argument).
    ///
    /// Returns `None` when infeasible — the signal that triggers
    /// operator scaling in WASP's policy (§6.2).
    pub fn solve(&self) -> Option<(Placement, f64)> {
        if self.parallelism == 0 || self.capacity() < self.parallelism {
            return None;
        }
        let mut order: Vec<usize> = (0..self.sites.len()).collect();
        order.sort_by(|&a, &b| {
            self.costs[a]
                .total_cmp(&self.costs[b])
                .then(self.sites[a].cmp(&self.sites[b]))
        });
        let mut remaining = self.parallelism;
        let mut placement = Placement::empty();
        let mut cost = 0.0;
        for i in order {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(self.upper_bounds[i]);
            if take > 0 {
                placement.add(self.sites[i], take);
                cost += take as f64 * self.costs[i];
                remaining -= take;
            }
        }
        debug_assert_eq!(remaining, 0);
        Some((placement, cost))
    }

    /// Exhaustive optimal solution by depth-first enumeration — the
    /// reference the greedy solver is property-tested against. Only
    /// intended for small instances.
    pub fn solve_exhaustive(&self) -> Option<(Placement, f64)> {
        fn rec(
            prob: &PlacementProblem,
            i: usize,
            remaining: u32,
            cost: f64,
            current: &mut Vec<u32>,
            best: &mut Option<(Vec<u32>, f64)>,
        ) {
            if i == prob.sites.len() {
                if remaining == 0 && best.as_ref().map(|(_, c)| cost < *c).unwrap_or(true) {
                    *best = Some((current.clone(), cost));
                }
                return;
            }
            let max_here = prob.upper_bounds[i].min(remaining);
            for take in 0..=max_here {
                current.push(take);
                rec(
                    prob,
                    i + 1,
                    remaining - take,
                    cost + take as f64 * prob.costs[i],
                    current,
                    best,
                );
                current.pop();
            }
        }
        let mut best = None;
        rec(self, 0, self.parallelism, 0.0, &mut Vec::new(), &mut best);
        best.map(|(takes, cost)| {
            let placement = self
                .sites
                .iter()
                .zip(takes)
                .filter(|(_, n)| *n > 0)
                .map(|(&s, n)| (s, n))
                .collect();
            (placement, cost)
        })
    }

    /// Smallest parallelism `p' ≥ p_min` for which the bandwidth
    /// constraints become satisfiable, together with its placement —
    /// the scale-out search (§4.2: a larger `p` spreads the stream
    /// over more links, so each site's bound grows with `p`).
    ///
    /// The per-site bounds must be rebuilt for every candidate `p`, so
    /// this takes the original request/network rather than the frozen
    /// problem. Returns `None` if even `max_p` is infeasible.
    pub fn minimal_feasible_parallelism(
        req: &PlacementRequest,
        net: &Network,
        t: SimTime,
        p_min: u32,
        max_p: u32,
    ) -> Option<(u32, Placement, f64)> {
        for p in p_min..=max_p {
            let mut r = req.clone();
            r.parallelism = p;
            let prob = PlacementProblem::build(&r, net, t);
            if let Some((placement, cost)) = prob.solve() {
                return Some((p, placement, cost));
            }
        }
        None
    }
}

/// Largest integer `n` with `n < x` (the ILP uses strict inequalities).
fn strict_bound(x: f64) -> f64 {
    if !x.is_finite() {
        return f64::INFINITY;
    }
    let f = (x - 1e-9).floor();
    f.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasp_netsim::site::SiteKind;
    use wasp_netsim::topology::TopologyBuilder;
    use wasp_netsim::units::{Mbps, Millis};

    /// 4 sites in a line: uniform 100 Mbps links, latency grows with
    /// index distance; site 0 is upstream.
    fn net4() -> (Network, Vec<SiteId>) {
        let mut b = TopologyBuilder::new();
        let s: Vec<SiteId> = (0..4)
            .map(|i| b.add_site(format!("s{i}"), SiteKind::DataCenter, 8))
            .collect();
        for i in 0..4u16 {
            for j in 0..4u16 {
                if i != j {
                    let dist = (i as f64 - j as f64).abs();
                    b.set_link(SiteId(i), SiteId(j), Mbps(100.0), Millis(10.0 * dist));
                }
            }
        }
        (Network::new(b.build().unwrap()), s)
    }

    fn request(sites: &[SiteId], p: u32, in_rate: f64) -> PlacementRequest {
        let mut req = PlacementRequest::new(p);
        req.upstream = vec![(sites[0], in_rate)];
        req.downstream = vec![(sites[0], in_rate * 0.1)];
        for &s in sites {
            req.available_slots.insert(s, 8);
        }
        req
    }

    #[test]
    fn prefers_low_latency_sites() {
        let (net, s) = net4();
        let req = request(&s, 2, 10.0);
        let prob = PlacementProblem::build(&req, &net, SimTime::ZERO);
        let (placement, _) = prob.solve().unwrap();
        // Site 0 itself has zero latency to the upstream/downstream.
        assert_eq!(placement.tasks_at(s[0]), 2);
    }

    #[test]
    fn bandwidth_constraint_forces_spreading() {
        let (net, s) = net4();
        // 150 Mbps inbound with p=2: each remote site may carry at
        // most floor-strict(0.8·100·2/150) = 1 task.
        let mut req = request(&s, 2, 150.0);
        // Do not allow the co-located site (infinite bandwidth there).
        req.available_slots.remove(&s[0]);
        let prob = PlacementProblem::build(&req, &net, SimTime::ZERO);
        let (placement, _) = prob.solve().unwrap();
        assert_eq!(placement.parallelism(), 2);
        assert!(placement.sites().len() == 2, "must spread: {placement}");
    }

    #[test]
    fn infeasible_returns_none() {
        let (net, s) = net4();
        let mut req = request(&s, 6, 500.0);
        req.available_slots.remove(&s[0]);
        let prob = PlacementProblem::build(&req, &net, SimTime::ZERO);
        assert!(prob.solve().is_none());
    }

    #[test]
    fn slot_constraint_respected() {
        let (net, s) = net4();
        let mut req = request(&s, 10, 1.0);
        req.available_slots = BTreeMap::from([(s[0], 3), (s[1], 3), (s[2], 4)]);
        let prob = PlacementProblem::build(&req, &net, SimTime::ZERO);
        let (placement, _) = prob.solve().unwrap();
        assert_eq!(placement.parallelism(), 10);
        assert!(placement.tasks_at(s[0]) <= 3);
        assert!(placement.tasks_at(s[1]) <= 3);
        assert!(placement.tasks_at(s[2]) <= 4);
    }

    #[test]
    fn greedy_matches_exhaustive() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let (net, s) = net4();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let mut req = request(&s, rng.gen_range(1..8), rng.gen_range(1.0..300.0));
            for &site in &s {
                if rng.gen_bool(0.3) {
                    req.available_slots.remove(&site);
                } else {
                    req.available_slots.insert(site, rng.gen_range(0..6));
                }
            }
            let prob = PlacementProblem::build(&req, &net, SimTime::ZERO);
            let greedy = prob.solve();
            let exact = prob.solve_exhaustive();
            match (greedy, exact) {
                (None, None) => {}
                (Some((_, cg)), Some((_, ce))) => {
                    assert!((cg - ce).abs() < 1e-6, "greedy {cg} vs exact {ce}");
                }
                (g, e) => panic!("feasibility mismatch: {g:?} vs {e:?}"),
            }
        }
    }

    #[test]
    fn scale_out_search_finds_feasible_parallelism() {
        let (net, s) = net4();
        // 150 Mbps from site 0: with p=1 no single remote site can
        // carry it (needs > α·B); p=2 splits it 75/75.
        let mut req = request(&s, 1, 150.0);
        req.available_slots.remove(&s[0]);
        let prob = PlacementProblem::build(&req, &net, SimTime::ZERO);
        assert!(prob.solve().is_none(), "p=1 must be infeasible");
        let (p, placement, _) =
            PlacementProblem::minimal_feasible_parallelism(&req, &net, SimTime::ZERO, 1, 8)
                .unwrap();
        assert_eq!(p, 2);
        assert_eq!(placement.parallelism(), 2);
    }

    #[test]
    fn strict_bound_is_strict() {
        assert_eq!(strict_bound(3.0), 2.0);
        assert_eq!(strict_bound(3.7), 3.0);
        assert_eq!(strict_bound(0.5), 0.0);
        assert_eq!(strict_bound(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn alpha_tightens_bounds() {
        let (net, s) = net4();
        let mut lo = request(&s, 4, 100.0);
        lo.alpha = 0.4;
        let mut hi = request(&s, 4, 100.0);
        hi.alpha = 1.0;
        lo.available_slots.remove(&s[0]);
        hi.available_slots.remove(&s[0]);
        let cap_lo = PlacementProblem::build(&lo, &net, SimTime::ZERO).capacity();
        let cap_hi = PlacementProblem::build(&hi, &net, SimTime::ZERO).capacity();
        assert!(cap_lo < cap_hi, "α=0.4 cap {cap_lo} vs α=1.0 cap {cap_hi}");
    }
}
