//! Wire types for the lossy command channel.
//!
//! A reconfiguration command travels controller → engine wrapped in a
//! [`CommandEnvelope`] carrying the fencing metadata (controller epoch
//! and plan version) plus a unique id for idempotent redelivery. The
//! engine answers with a [`CommandAck`] routed back over the same
//! lossy channel.

use serde::{Deserialize, Serialize};
use wasp_netsim::site::SiteId;

/// A fenced, uniquely identified control command in flight.
///
/// (Not serde-serializable: the payload is an engine command that
/// lives above this crate in the dependency graph.)
#[derive(Debug, Clone, PartialEq)]
pub struct CommandEnvelope<C> {
    /// Unique id, assigned by the controller; redeliveries reuse it.
    pub id: u64,
    /// Controller epoch at submission time. The engine rejects
    /// envelopes whose epoch is older than the newest it has applied.
    pub epoch: u64,
    /// Engine plan version the controller observed when it decided on
    /// this command. Used controller-side to abandon retries whose
    /// premise no longer holds.
    pub plan_version: u64,
    /// Human-readable action label (mirrors `Action::label`).
    pub label: String,
    /// Simulated time of the most recent send attempt.
    pub sent_s: f64,
    /// The wrapped command.
    pub payload: C,
}

/// What the engine did with a delivered command.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AckOutcome {
    /// The command was applied.
    Applied,
    /// The command id had already been applied; redelivery ignored.
    Duplicate,
    /// The envelope's epoch was older than the engine's fencing epoch.
    Stale {
        /// Engine fencing epoch at rejection time.
        engine_epoch: u64,
        /// Engine plan version at rejection time.
        engine_plan_version: u64,
    },
    /// The engine refused the command for a domain reason (busy
    /// operator, failed site, infeasible placement, ...).
    Rejected {
        /// Stringified engine error.
        error: String,
    },
}

impl AckOutcome {
    /// True when the command took effect.
    pub fn applied(&self) -> bool {
        matches!(self, AckOutcome::Applied)
    }

    /// True when the controller should stop retrying this command
    /// (it either took effect or can never take effect).
    pub fn is_final(&self) -> bool {
        matches!(
            self,
            AckOutcome::Applied | AckOutcome::Duplicate | AckOutcome::Stale { .. }
        )
    }
}

/// Engine → controller acknowledgement for one delivery attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommandAck {
    /// Envelope id being acknowledged.
    pub id: u64,
    /// Action label, echoed for audit trails.
    pub label: String,
    /// When the acknowledged attempt was sent (simulated seconds).
    pub submitted_s: f64,
    /// When the command reached the engine.
    pub delivered_s: f64,
    /// What the engine did with it.
    pub outcome: AckOutcome,
}

/// A heartbeat that survived the WAN and reached the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatArrival {
    /// Emitting site.
    pub site: SiteId,
    /// When the site sent it (simulated seconds).
    pub sent_s: f64,
    /// When it arrived at the controller.
    pub arrived_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ack_outcome_finality() {
        assert!(AckOutcome::Applied.is_final());
        assert!(AckOutcome::Duplicate.is_final());
        assert!(AckOutcome::Stale {
            engine_epoch: 3,
            engine_plan_version: 1
        }
        .is_final());
        assert!(!AckOutcome::Rejected {
            error: "busy".into()
        }
        .is_final());
        assert!(AckOutcome::Applied.applied());
        assert!(!AckOutcome::Duplicate.applied());
    }

    #[test]
    fn ack_round_trips_through_serde() {
        let ack = CommandAck {
            id: 7,
            label: "re-assign filter".into(),
            submitted_s: 120.0,
            delivered_s: 121.5,
            outcome: AckOutcome::Stale {
                engine_epoch: 3,
                engine_plan_version: 2,
            },
        };
        let json = serde_json::to_string(&ack).unwrap();
        let back: CommandAck = serde_json::from_str(&json).unwrap();
        assert_eq!(ack, back);
    }
}
