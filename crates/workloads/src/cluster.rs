//! Multi-query co-scheduling over one shared WAN.
//!
//! The paper's Job Manager serves *multiple* queries (§2.1), and §3.2
//! names "bandwidth contention with other executions" as a source of
//! dynamics. [`CoupledCluster`] runs several engines in lock-step over
//! the same testbed and couples them through the network: after every
//! tick, each engine's measured per-link usage is installed into every
//! *other* engine's network as transient cross traffic, so one tenant's
//! load spike genuinely squeezes its neighbours — and each tenant's
//! controller adapts independently, exactly as WASP's per-query
//! Reconfiguration Managers would.

use std::collections::BTreeMap;
use wasp_core::controller::Controller;
use wasp_netsim::site::SiteId;
use wasp_streamsim::engine::Engine;

/// One tenant: an engine plus its adaptation controller.
pub struct Tenant {
    /// Display name.
    pub name: String,
    /// The tenant's engine.
    pub engine: Engine,
    /// The tenant's controller.
    pub controller: Box<dyn Controller>,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant").field("name", &self.name).finish()
    }
}

/// Several queries sharing one WAN, coupled through cross traffic.
#[derive(Debug, Default)]
pub struct CoupledCluster {
    tenants: Vec<Tenant>,
    /// Monitoring interval (per tenant), seconds.
    pub monitor_interval_s: f64,
    elapsed_since_monitor: f64,
}

impl CoupledCluster {
    /// Creates an empty cluster with the paper's 40 s monitoring
    /// interval.
    pub fn new() -> CoupledCluster {
        CoupledCluster {
            tenants: Vec::new(),
            monitor_interval_s: 40.0,
            elapsed_since_monitor: 0.0,
        }
    }

    /// Adds a tenant.
    ///
    /// Every tenant's engine should be built over the *same* testbed
    /// topology (each holds its own [`wasp_netsim::network::Network`]
    /// clone; the coupling keeps their views consistent).
    pub fn add_tenant(
        &mut self,
        name: impl Into<String>,
        engine: Engine,
        controller: Box<dyn Controller>,
    ) {
        self.tenants.push(Tenant {
            name: name.into(),
            engine,
            controller,
        });
    }

    /// The tenants.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Consumes the cluster, returning the tenants (e.g. to extract
    /// their metrics).
    pub fn into_tenants(self) -> Vec<Tenant> {
        self.tenants
    }

    /// Advances every tenant by one tick and exchanges link usage.
    pub fn step(&mut self) {
        // 1. Step every engine on its current view.
        let mut dt = 0.0;
        for t in &mut self.tenants {
            let before = t.engine.now().secs();
            t.engine.step();
            dt = t.engine.now().secs() - before;
        }
        // 2. Exchange usage: tenant i sees Σ_{j≠i} usage_j as cross
        //    traffic next tick.
        let usages: Vec<BTreeMap<(SiteId, SiteId), f64>> = self
            .tenants
            .iter()
            .map(|t| t.engine.last_link_usage().clone())
            .collect();
        for (i, t) in self.tenants.iter_mut().enumerate() {
            let mut others: BTreeMap<(SiteId, SiteId), f64> = BTreeMap::new();
            for (j, usage) in usages.iter().enumerate() {
                if i == j {
                    continue;
                }
                for (&link, &mbps) in usage {
                    *others.entry(link).or_insert(0.0) += mbps;
                }
            }
            t.engine.network_mut().set_transient_cross_traffic(others);
        }
        // 3. Fire the controllers on the monitoring cadence.
        self.elapsed_since_monitor += dt;
        if self.elapsed_since_monitor + 1e-9 >= self.monitor_interval_s {
            self.elapsed_since_monitor = 0.0;
            for t in &mut self.tenants {
                t.controller.on_monitor(&mut t.engine);
            }
        }
    }

    /// Runs the cluster for `duration_s` simulated seconds.
    pub fn run(&mut self, duration_s: f64) {
        let Some(first) = self.tenants.first() else {
            return;
        };
        let end = first.engine.now().secs() + duration_s;
        while self
            .tenants
            .first()
            .map(|t| t.engine.now().secs() < end - 1e-9)
            .unwrap_or(false)
        {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::scenarios::build_engine;
    use wasp_core::controller::{NoAdaptController, WaspController};
    use wasp_core::policy::PolicyConfig;
    use wasp_netsim::dynamics::DynamicsScript;
    use wasp_netsim::prelude::*;
    use wasp_netsim::trace::FactorSeries;
    use wasp_streamsim::prelude::*;

    fn engine_cfg() -> EngineConfig {
        EngineConfig {
            dt: 0.5,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn coupled_tenants_both_run() {
        let tb = Testbed::paper(42);
        let mut cluster = CoupledCluster::new();
        for (i, kind) in [QueryKind::TopK, QueryKind::EventsOfInterest]
            .into_iter()
            .enumerate()
        {
            let (engine, _) = build_engine(kind, &tb, DynamicsScript::none(), engine_cfg());
            cluster.add_tenant(format!("q{i}"), engine, Box::new(NoAdaptController));
        }
        cluster.run(120.0);
        for t in cluster.tenants() {
            assert!(
                t.engine.metrics().total_delivered() > 0.0,
                "{} delivered nothing",
                t.name
            );
        }
    }

    #[test]
    fn tenant_spike_squeezes_its_neighbour() {
        // Tenant B's workload quadruples at t = 120; with the coupling
        // its streams eat into the shared edge links, so tenant A
        // observes less available bandwidth than without B.
        let tb = Testbed::paper(42);
        let run = |couple: bool| {
            let mut cluster = CoupledCluster::new();
            let (a, _) = build_engine(QueryKind::TopK, &tb, DynamicsScript::none(), engine_cfg());
            cluster.add_tenant("a", a, Box::new(NoAdaptController));
            if couple {
                let script = DynamicsScript::none()
                    .with_global_workload(FactorSeries::steps(1.0, &[(120.0, 4.0)]));
                let (b, _) = build_engine(QueryKind::EventsOfInterest, &tb, script, engine_cfg());
                cluster.add_tenant("b", b, Box::new(NoAdaptController));
            }
            cluster.run(400.0);
            let t = cluster.into_tenants().into_iter().next().expect("tenant a");
            t.engine
                .into_metrics()
                .delay_quantile_between(200.0, 400.0, 0.95)
                .expect("deliveries")
        };
        let alone = run(false);
        let squeezed = run(true);
        assert!(
            squeezed > alone,
            "contention should hurt: alone {alone} vs squeezed {squeezed}"
        );
    }

    #[test]
    fn wasp_tenant_adapts_to_neighbour_contention() {
        // Same squeeze, but tenant A runs WASP: it should adapt and
        // keep its delay bounded.
        let tb = Testbed::paper(42);
        let mut cluster = CoupledCluster::new();
        let (a, _) = build_engine(QueryKind::TopK, &tb, DynamicsScript::none(), engine_cfg());
        cluster.add_tenant(
            "a",
            a,
            Box::new(WaspController::new(PolicyConfig::default())),
        );
        let script =
            DynamicsScript::none().with_global_workload(FactorSeries::steps(1.0, &[(120.0, 4.0)]));
        let (b, _) = build_engine(QueryKind::EventsOfInterest, &tb, script, engine_cfg());
        cluster.add_tenant("b", b, Box::new(NoAdaptController));
        cluster.run(900.0);
        let a = cluster.into_tenants().into_iter().next().expect("tenant a");
        let m = a.engine.metrics();
        let adapted = m
            .actions()
            .iter()
            .any(|(_, act)| act.contains("re-") || act.contains("scale"));
        let end_delay = m
            .delay_quantile_between(700.0, 900.0, 0.95)
            .expect("deliveries");
        assert!(
            adapted || end_delay < 15.0,
            "tenant A neither adapted nor stayed healthy: p95 {end_delay}, actions {:?}",
            m.actions()
        );
        assert!(end_delay < 30.0, "end-of-run p95 {end_delay}");
    }
}
