//! # wasp-netsim — wide-area network substrate
//!
//! The network layer of the [WASP (Middleware 2020)] reproduction. The
//! paper evaluates on a 16-node testbed whose links are shaped from a
//! 1-day EC2 bandwidth measurement and Akamai edge statistics; this
//! crate rebuilds that environment as a deterministic model:
//!
//! * [`site`] / [`topology`] — sites with compute slots, directed
//!   pair-wise latency/bandwidth matrices;
//! * [`network`] — time-varying available bandwidth plus max-min fair
//!   allocation of concurrent flows;
//! * [`trace`] — bandwidth factor traces (scripted steps, EC2-style
//!   daily variation, live bounded random walks);
//! * [`dynamics`] — whole-experiment scripts (workload factors,
//!   bandwidth factors, failures) matching §8.4–§8.6 of the paper;
//! * [`testbed`] — the paper's 8-DC + 8-edge testbed (Fig. 7);
//! * [`stats`] — deterministic distribution helpers (normal, Zipf,
//!   bounded walks, quantiles).
//!
//! # Example
//!
//! ```
//! use wasp_netsim::prelude::*;
//!
//! let tb = Testbed::paper(42);
//! let net = tb.network_with_ec2_dynamics();
//! let (a, c) = (tb.data_centers()[0], tb.data_centers()[1]);
//! let bw = net.available(a, c, SimTime(600.0));
//! assert!(bw.0 > 0.0);
//! ```
//!
//! [WASP (Middleware 2020)]: https://doi.org/10.1145/3423211.3425668

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod control;
pub mod dynamics;
pub mod network;
pub mod site;
pub mod stats;
pub mod testbed;
pub mod topology;
pub mod trace;
pub mod transit;
pub mod units;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::chaos::{emit_chaos_schedule, ChaosConfig, ChaosEvent, ChaosInjector};
    pub use crate::control::{ControlTransport, ControlVerdict, DropCause};
    pub use crate::dynamics::{ControlPartition, DynamicsScript, Failure};
    pub use crate::network::{FlowDemand, Network};
    pub use crate::site::{Site, SiteId, SiteKind};
    pub use crate::testbed::{Testbed, TestbedConfig};
    pub use crate::topology::{Topology, TopologyBuilder, TopologyError};
    pub use crate::trace::{Ec2TraceGenerator, FactorSeries, WalkTraceGenerator};
    pub use crate::units::{Mbps, MegaBytes, Millis, SimTime};
}
