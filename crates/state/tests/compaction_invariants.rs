//! Property suite for checkpoint delta chains and compaction
//! (ISSUE 10).
//!
//! The chain is what recovery replays, so these invariants keep the
//! modeled downtime honest: for *arbitrary* write/checkpoint/compact
//! (and split) interleavings, chain mass equals exactly what the
//! checkpoint rounds uploaded, replay reconstructs the same full state
//! a fresh snapshot would, compaction is idempotent and deterministic
//! across clones, and split lineage keeps every round attributable to
//! a pre-split origin partition.
//!
//! Case count: 128 by default, raised in CI via `PROPTEST_CASES`
//! (the `compaction-invariants` job runs 512).

use proptest::prelude::*;
use wasp_state::{CompactionPolicy, PartitionConfig, StateStore};

/// `PROPTEST_CASES` override (the vendored proptest only honours the
/// in-config count, so the env var is resolved here).
fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

fn chained_config(partitions: u32, zipf_exponent: f64, seed: u64) -> PartitionConfig {
    PartitionConfig {
        partitions,
        zipf_exponent,
        seed,
        compaction: CompactionPolicy::unbounded(),
        ..PartitionConfig::default()
    }
}

/// One step of an interleaved workload, decoded from a generated
/// `(tag, megabytes, pick)` tuple (the vendored proptest has no
/// `prop_oneof`): tag 0 = write `mb`, 1 = checkpoint, 2 = compact,
/// 3 = split partition `pick % partitions`.
#[derive(Debug, Clone, Copy)]
enum Op {
    Write(f64),
    Checkpoint,
    Compact,
    Split(usize),
}

fn decode(step: (u8, f64, usize)) -> Op {
    match step.0 % 4 {
        0 => Op::Write(step.1),
        1 => Op::Checkpoint,
        2 => Op::Compact,
        _ => Op::Split(step.2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Chain mass conservation: the chain's accumulated delta volume
    /// equals exactly the sum of the checkpoint deltas taken since the
    /// last compaction, and the base equals the last compaction's
    /// upload.
    #[test]
    fn chain_mass_equals_checkpoint_uploads(
        n_parts in 1u32..32,
        zipf in 0.0f64..2.5,
        seed in 0u64..u64::MAX,
        stream in 0u64..u64::MAX,
        total in 0.5f64..500.0,
        writes in proptest::collection::vec(0.0f64..40.0, 1..20),
    ) {
        let cfg = chained_config(n_parts, zipf, seed);
        let mut s = StateStore::new(&cfg, stream);
        s.set_total_mb(total);
        let base = s.compact();
        prop_assert_eq!(base, total, "compaction uploads the live size");
        let mut uploaded = 0.0;
        for &w in &writes {
            s.record_writes(w);
            uploaded += s.take_checkpoint().delta_mb;
        }
        let chain = s.chain();
        prop_assert!(
            (chain.delta_mb() - uploaded).abs() < 1e-9 * uploaded.max(1.0),
            "chain mass {} vs checkpoint uploads {}",
            chain.delta_mb(),
            uploaded
        );
        prop_assert_eq!(chain.base_mb, total);
        prop_assert!(
            (chain.replay_mb() - (total + uploaded)).abs() < 1e-9 * (total + uploaded).max(1.0)
        );
        // Each round's per-origin slices sum back to the round total.
        for r in &chain.rounds {
            let per: f64 = r.per_partition_mb.iter().map(|&(_, m)| m).sum();
            prop_assert!(
                (per - r.delta_mb).abs() < 1e-9 * r.delta_mb.max(1.0),
                "round slices {} vs delta {}",
                per,
                r.delta_mb
            );
        }
    }

    /// Replaying the chain reconstructs the same full state size an
    /// immediate full snapshot would report.
    #[test]
    fn replay_reconstructs_the_live_full_size(
        n_parts in 1u32..32,
        zipf in 0.0f64..2.5,
        seed in 0u64..u64::MAX,
        stream in 0u64..u64::MAX,
        totals in proptest::collection::vec(0.5f64..500.0, 1..12),
        writes in 0.1f64..40.0,
    ) {
        let cfg = chained_config(n_parts, zipf, seed);
        let mut s = StateStore::new(&cfg, stream);
        // Grow/shrink the live size between rounds; every round is
        // dirty, so each records the full size at its time.
        for &t in &totals {
            s.set_total_mb(t);
            s.record_writes(writes);
            let ck = s.take_checkpoint();
            prop_assert!(ck.delta_mb > 0.0, "writes must dirty the store");
        }
        // A fresh full snapshot reports the live size; the chain's
        // replay reconstructs the same number (the last round's full).
        let probe = s.clone().take_checkpoint().full_mb;
        prop_assert_eq!(s.chain().reconstructed_full_mb(), probe);
        prop_assert_eq!(probe, *totals.last().unwrap());
    }

    /// Compaction is deterministic across clones and idempotent: two
    /// identical stores compact to identical chains with identical
    /// upload volumes, and compacting twice changes nothing.
    #[test]
    fn compaction_is_deterministic_and_idempotent(
        n_parts in 1u32..32,
        zipf in 0.0f64..2.5,
        seed in 0u64..u64::MAX,
        stream in 0u64..u64::MAX,
        total in 0.5f64..500.0,
        writes in proptest::collection::vec(0.0f64..40.0, 0..10),
    ) {
        let cfg = chained_config(n_parts, zipf, seed);
        let mut a = StateStore::new(&cfg, stream);
        a.set_total_mb(total);
        for &w in &writes {
            a.record_writes(w);
            let _ = a.take_checkpoint();
        }
        let mut b = a.clone();
        let ua = a.compact();
        let ub = b.compact();
        prop_assert_eq!(ua, ub, "clones must compact identically");
        prop_assert_eq!(a.chain(), b.chain());
        prop_assert!(a.chain().is_empty());
        prop_assert_eq!(a.chain().base_mb, total);
        // Idempotent: a second compaction at the same live size is a
        // no-op returning the same volume.
        let snapshot = a.chain().clone();
        prop_assert_eq!(a.compact(), ua);
        prop_assert_eq!(a.chain(), &snapshot);
    }

    /// Arbitrary split/checkpoint/compact interleavings keep the chain
    /// valid: mass conservation against the uploads since the last
    /// compaction, origin lineage inside the pre-split id range, and a
    /// replay estimate consistent with the chain's own arithmetic.
    #[test]
    fn chains_stay_valid_across_interleavings(
        n_parts in 1u32..32,
        zipf in 0.0f64..2.5,
        seed in 0u64..u64::MAX,
        stream in 0u64..u64::MAX,
        total in 0.5f64..500.0,
        steps in proptest::collection::vec((0u8..4, 0.0f64..40.0, 0usize..4096), 0..40),
    ) {
        let cfg = chained_config(n_parts, zipf, seed);
        let mut s = StateStore::new(&cfg, stream);
        s.set_total_mb(total);
        let mut uploaded_since_compact = 0.0;
        let mut base = 0.0;
        for &step in &steps {
            match decode(step) {
                Op::Write(mb) => s.record_writes(mb),
                Op::Checkpoint => {
                    uploaded_since_compact += s.take_checkpoint().delta_mb;
                }
                Op::Compact => {
                    base = s.compact();
                    prop_assert_eq!(base, total);
                    uploaded_since_compact = 0.0;
                }
                Op::Split(p) => {
                    let n = s.partitions();
                    let _ = s.split(p % n);
                }
            }
            let chain = s.chain();
            prop_assert!(
                (chain.delta_mb() - uploaded_since_compact).abs()
                    < 1e-9 * uploaded_since_compact.max(1.0),
                "chain mass {} vs uploads {}",
                chain.delta_mb(),
                uploaded_since_compact
            );
            prop_assert_eq!(chain.base_mb, base);
            // Lineage: every round slice keys a pre-split origin.
            for r in &chain.rounds {
                for &(origin, mb) in &r.per_partition_mb {
                    prop_assert!(origin < n_parts.max(1), "origin {origin} out of range");
                    prop_assert!(mb > 0.0, "empty slice recorded");
                }
            }
            // The store's replay estimate is the chain's arithmetic at
            // the configured bandwidth.
            let bw = cfg.compaction.config().unwrap().replay_mb_per_s;
            prop_assert_eq!(s.replay_seconds().unwrap(), chain.replay_seconds(bw));
        }
    }
}
