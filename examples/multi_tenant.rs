//! Multi-query contention: two tenants share the 16-node testbed's
//! WAN. Tenant B's workload quadruples mid-run; its streams squeeze
//! the links tenant A depends on, and each tenant's WASP controller
//! adapts independently (§2.1 multi-query Job Manager, §3.2
//! "bandwidth contention with other executions").
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use wasp_core::prelude::*;
use wasp_netsim::prelude::*;
use wasp_streamsim::prelude::*;
use wasp_workloads::prelude::*;
use wasp_workloads::scenarios::build_engine;

fn main() {
    let tb = Testbed::paper(42);
    let engine_cfg = EngineConfig {
        dt: 0.25,
        ..EngineConfig::default()
    };

    let mut cluster = CoupledCluster::new();

    // Tenant A: a steady Top-K query under WASP.
    let (a, a_e2e) = build_engine(
        QueryKind::TopK,
        &tb,
        DynamicsScript::none(),
        engine_cfg.clone(),
    );
    cluster.add_tenant(
        "topk",
        a,
        Box::new(WaspController::new(PolicyConfig::default())),
    );

    // Tenant B: an Events-of-Interest query whose workload quadruples
    // at t = 300.
    let script =
        DynamicsScript::none().with_global_workload(FactorSeries::steps(1.0, &[(300.0, 4.0)]));
    let (b, b_e2e) = build_engine(QueryKind::EventsOfInterest, &tb, script, engine_cfg);
    cluster.add_tenant(
        "interest",
        b,
        Box::new(WaspController::new(PolicyConfig::default())),
    );

    println!("running two coupled tenants for 900 s …\n");
    cluster.run(900.0);

    for (tenant, e2e) in cluster.into_tenants().into_iter().zip([a_e2e, b_e2e]) {
        let m = tenant.engine.metrics();
        println!("tenant {:<9}", tenant.name);
        println!(
            "  delivered {:.1}% of expected, mean delay {:.1}s, p95 {:.1}s",
            100.0 * m.total_delivered() / (m.total_generated() * e2e),
            m.mean_delay().unwrap_or(0.0),
            m.delay_quantile(0.95).unwrap_or(0.0),
        );
        for (t, a) in m.actions() {
            if !a.starts_with("transition") {
                println!("  adaptation at t={t:>5.0}s: {a}");
            }
        }
        println!();
    }
}
