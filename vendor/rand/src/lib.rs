//! Offline stand-in for the `rand` crate, covering the subset used by
//! this workspace: a seedable deterministic generator (`StdRng`,
//! xoshiro256++), the `Rng` extension trait (`gen`, `gen_range`,
//! `gen_bool`) and `seq::SliceRandom::shuffle`.
//!
//! The generator is high quality (xoshiro256++ seeded via SplitMix64)
//! but the *stream of values is not identical* to upstream `rand` for
//! the same seed — only determinism and distribution quality are
//! promised, which is all the workspace relies on.

/// Core trait producing raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Deterministically construct the generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// A sample distribution (only `Standard` is provided).
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution for a type: uniform over the full domain
/// for integers/bool, uniform in `[0, 1)` for floats.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type with a uniform sampler over an interval (subset of upstream
/// `SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// A range that can produce uniform samples. The single blanket impl
/// per range shape (mirroring upstream) is what lets integer-literal
/// ranges take their type from the call-site context, e.g.
/// `v[rng.gen_range(0..3)]` inferring `usize`.
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (uniform_u64(rng, (hi - lo) as u64) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, (hi - lo) as u64 + 1) as $t)
            }
        }
    )*};
}
impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add(uniform_u64(rng, span) as i64) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add(uniform_u64(rng, span + 1) as i64) as $t
            }
        }
    )*};
}
impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u: f64 = Standard.sample(rng);
                let v = lo as f64 + u * (hi as f64 - lo as f64);
                // Guard against rounding up onto the excluded endpoint.
                if v >= hi as f64 { lo } else { v as $t }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u: f64 = Standard.sample(rng);
                (lo as f64 + u * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Debiased bounded sampling (Lemire-style rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Extension trait with the ergonomic sampling helpers.
pub trait Rng: RngCore {
    /// Sample from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let u: f64 = Standard.sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators (only [`rngs::StdRng`]).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator: xoshiro256++ seeded via
    /// SplitMix64. Statistically strong, trivially portable.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

/// Sequence-related helpers (only `shuffle`/`choose`).
pub mod seq {
    use super::Rng;

    /// Subset of upstream `SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized;

        /// Uniformly chosen element, `None` when empty.
        fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
        where
            R: Rng + ?Sized;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: Rng + ?Sized,
        {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R>(&self, rng: &mut R) -> Option<&T>
        where
            R: Rng + ?Sized,
        {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(2.5f64..7.5);
            assert!((2.5..7.5).contains(&f));
        }
        // All values of a small range should be hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
