//! Property-based tests for the optimization substrate: the greedy ILP
//! against exhaustive search, min-max migration against brute force,
//! matching maximality, and join-order DP self-consistency.

use proptest::prelude::*;
use std::collections::BTreeMap;
use wasp_netsim::network::Network;
use wasp_netsim::site::{SiteId, SiteKind};
use wasp_netsim::topology::TopologyBuilder;
use wasp_netsim::units::{Mbps, MegaBytes, Millis, SimTime};
use wasp_optimizer::matching::Bipartite;
use wasp_optimizer::migration::{plan_migration, MigrationStrategy};
use wasp_optimizer::placement::{PlacementProblem, PlacementRequest};
use wasp_optimizer::replan::{ReplanProblem, StreamLeaf};

/// A random fully-connected network over `n` sites.
fn random_network(n: u16, caps: &[f64], lats: &[f64]) -> Network {
    let mut b = TopologyBuilder::new();
    for i in 0..n {
        b.add_site(format!("s{i}"), SiteKind::DataCenter, 8);
    }
    let mut k = 0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.set_link(
                    SiteId(i),
                    SiteId(j),
                    Mbps(caps[k % caps.len()]),
                    Millis(lats[k % lats.len()]),
                );
                k += 1;
            }
        }
    }
    Network::new(b.build().expect("valid topology"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The greedy placement solver is exactly optimal (matches the
    /// exhaustive reference) and both agree on feasibility.
    #[test]
    fn greedy_placement_matches_exhaustive(
        caps in proptest::collection::vec(1.0f64..200.0, 12..20),
        lats in proptest::collection::vec(1.0f64..200.0, 12..20),
        p in 1u32..6,
        in_rate in 1.0f64..150.0,
        out_rate in 0.0f64..50.0,
        slots in proptest::collection::vec(0u32..5, 4),
    ) {
        let net = random_network(4, &caps, &lats);
        let mut req = PlacementRequest::new(p);
        req.upstream = vec![(SiteId(0), in_rate)];
        req.downstream = vec![(SiteId(1), out_rate)];
        for (i, &s) in slots.iter().enumerate() {
            if s > 0 {
                req.available_slots.insert(SiteId(i as u16), s);
            }
        }
        let prob = PlacementProblem::build(&req, &net, SimTime::ZERO);
        match (prob.solve(), prob.solve_exhaustive()) {
            (None, None) => {}
            (Some((pg, cg)), Some((pe, ce))) => {
                prop_assert!((cg - ce).abs() < 1e-6, "greedy {cg} vs exhaustive {ce}");
                prop_assert_eq!(pg.parallelism(), p);
                prop_assert_eq!(pe.parallelism(), p);
            }
            (g, e) => prop_assert!(false, "feasibility mismatch: {g:?} vs {e:?}"),
        }
    }

    /// The min-max migration plan is optimal against brute force over
    /// all permutations (≤ 4 sources).
    #[test]
    fn minmax_migration_is_optimal(
        caps in proptest::collection::vec(1.0f64..200.0, 20..40),
        sizes in proptest::collection::vec(1.0f64..300.0, 2..4),
    ) {
        let n_src = sizes.len();
        let net = random_network(2 * n_src as u16, &caps, &[10.0]);
        let sources: Vec<(SiteId, MegaBytes)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &mb)| (SiteId(i as u16), MegaBytes(mb)))
            .collect();
        let dests: Vec<SiteId> = (n_src..2 * n_src).map(|i| SiteId(i as u16)).collect();
        let plan = plan_migration(&sources, &dests, &net, SimTime::ZERO,
            MigrationStrategy::NetworkAware);
        // Brute force over all permutations.
        fn perms(n: usize) -> Vec<Vec<usize>> {
            fn rec(n: usize, used: &mut Vec<bool>, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
                if cur.len() == n {
                    out.push(cur.clone());
                    return;
                }
                for i in 0..n {
                    if !used[i] {
                        used[i] = true;
                        cur.push(i);
                        rec(n, used, cur, out);
                        cur.pop();
                        used[i] = false;
                    }
                }
            }
            let mut out = Vec::new();
            rec(n, &mut vec![false; n], &mut Vec::new(), &mut out);
            out
        }
        let best = perms(n_src)
            .into_iter()
            .map(|perm| {
                sources
                    .iter()
                    .zip(perm)
                    .map(|(&(s, mb), j)| mb.transfer_time(net.available(s, dests[j], SimTime::ZERO)))
                    .fold(0.0f64, f64::max)
            })
            .fold(f64::INFINITY, f64::min);
        prop_assert!((plan.bottleneck_s - best).abs() < 1e-9,
            "minmax {} vs brute {best}", plan.bottleneck_s);
    }

    /// Hopcroft–Karp matchings are valid (no shared endpoints) and not
    /// smaller than a greedy matching.
    #[test]
    fn matching_is_valid_and_maximal(
        edges in proptest::collection::btree_set((0usize..6, 0usize..6), 0..20),
    ) {
        let mut g = Bipartite::new(6, 6);
        for &(l, r) in &edges {
            g.add_edge(l, r);
        }
        let m = g.maximum_matching();
        let mut used_r = std::collections::BTreeSet::new();
        for (l, r) in m.iter().enumerate() {
            if let Some(r) = r {
                prop_assert!(edges.contains(&(l, *r)), "matched non-edge");
                prop_assert!(used_r.insert(*r), "right vertex reused");
            }
        }
        // Greedy lower bound.
        let mut used = [false; 6];
        let mut greedy = 0;
        for l in 0..6 {
            for &(el, r) in &edges {
                if el == l && !used[r] {
                    used[r] = true;
                    greedy += 1;
                    break;
                }
            }
        }
        prop_assert!(m.iter().flatten().count() >= greedy);
    }

    /// The join-order DP's chosen plan evaluates to its claimed cost,
    /// and honors required sub-trees.
    #[test]
    fn join_dp_self_consistent(
        caps in proptest::collection::vec(5.0f64..200.0, 20..40),
        rates in proptest::collection::vec(1.0f64..40.0, 4),
        selectivity in 0.1f64..1.0,
        require_cd in proptest::bool::ANY,
    ) {
        let net = random_network(5, &caps, &[20.0]);
        let leaves: Vec<StreamLeaf> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| StreamLeaf::new(format!("S{i}"), SiteId(i as u16), r))
            .collect();
        let problem = ReplanProblem {
            leaves,
            join_selectivity: selectivity,
            alpha: 0.8,
            required_subtrees: if require_cd { vec![vec![2, 3]] } else { vec![] },
            candidate_sites: (0..5).map(SiteId).collect(),
        };
        if let Some(choice) = problem.solve(&net, SimTime::ZERO) {
            let (cost, rate, site) = problem.evaluate(&choice.tree, &net, SimTime::ZERO);
            prop_assert!((cost - choice.cost).abs() < 1e-6 * choice.cost.max(1.0),
                "claimed {} vs evaluated {cost}", choice.cost);
            prop_assert!((rate - choice.out_rate_mbps).abs() < 1e-9);
            prop_assert_eq!(site, choice.root_site);
            if require_cd {
                prop_assert!(choice.tree.contains_subtree(0b1100));
            }
        }
    }

    /// The partition-pipelined schedule never has a worse makespan
    /// than the coarse min-max plan it refines (§5): the scheduler
    /// seeds from the coarse assignment and only accepts
    /// strictly-improving moves. Also: slices conserve volume and the
    /// worst per-partition pause never exceeds the makespan.
    #[test]
    fn pipelined_schedule_dominates_coarse_bottleneck(
        caps in proptest::collection::vec(1.0f64..200.0, 20..60),
        sizes in proptest::collection::vec(0.5f64..400.0, 1..5),
        n_parts in 2u32..48,
        zipf in 0.0f64..2.0,
        seed in 0u64..u64::MAX,
        stream in 0u64..u64::MAX,
    ) {
        use wasp_optimizer::partition::plan_partitioned_migration;
        use wasp_state::PartitionConfig;

        let n_src = sizes.len();
        let net = random_network(2 * n_src as u16, &caps, &[10.0]);
        let sources: Vec<(SiteId, MegaBytes)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &mb)| (SiteId(i as u16), MegaBytes(mb)))
            .collect();
        let dests: Vec<SiteId> = (n_src..2 * n_src).map(|i| SiteId(i as u16)).collect();
        let cfg = PartitionConfig {
            partitions: n_parts,
            zipf_exponent: zipf,
            seed,
            ..PartitionConfig::default()
        };
        let plan = plan_partitioned_migration(stream, &cfg, &sources, &dests, &net, SimTime::ZERO);
        let coarse = plan.coarse.bottleneck_s;
        prop_assert!(
            plan.bottleneck_s() <= coarse * (1.0 + 1e-9) + 1e-9,
            "pipelined {} beats physics? coarse {coarse}",
            plan.bottleneck_s()
        );
        prop_assert!(
            plan.max_pause_s() <= plan.bottleneck_s() + 1e-9,
            "pause {} > makespan {}",
            plan.max_pause_s(),
            plan.bottleneck_s()
        );
        let total: f64 = sizes.iter().sum();
        prop_assert!(
            (plan.schedule.total_mb() - total).abs() < 1e-6 * total.max(1.0),
            "slices {} vs state {total}",
            plan.schedule.total_mb()
        );
    }

    /// With runtime splitting enabled, the plan still conserves
    /// volume, never pauses longer than the flat-bucket plan, keeps
    /// dominance over the coarse bottleneck, and every slice's
    /// lineage resolves to an original hash partition.
    #[test]
    fn split_plan_dominates_flat_and_keeps_lineage(
        caps in proptest::collection::vec(1.0f64..200.0, 20..60),
        sizes in proptest::collection::vec(0.5f64..400.0, 1..5),
        n_parts in 2u32..48,
        zipf in 0.0f64..2.0,
        seed in 0u64..u64::MAX,
        stream in 0u64..u64::MAX,
        th in 0.05f64..0.5,
    ) {
        use wasp_optimizer::partition::plan_partitioned_migration;
        use wasp_state::PartitionConfig;

        let n_src = sizes.len();
        let net = random_network(2 * n_src as u16, &caps, &[10.0]);
        let sources: Vec<(SiteId, MegaBytes)> = sizes
            .iter()
            .enumerate()
            .map(|(i, &mb)| (SiteId(i as u16), MegaBytes(mb)))
            .collect();
        let dests: Vec<SiteId> = (n_src..2 * n_src).map(|i| SiteId(i as u16)).collect();
        let flat_cfg = PartitionConfig {
            partitions: n_parts,
            zipf_exponent: zipf,
            seed,
            ..PartitionConfig::default()
        };
        let split_cfg = PartitionConfig {
            split_threshold: Some(th),
            ..flat_cfg
        };
        let flat =
            plan_partitioned_migration(stream, &flat_cfg, &sources, &dests, &net, SimTime::ZERO);
        let plan =
            plan_partitioned_migration(stream, &split_cfg, &sources, &dests, &net, SimTime::ZERO);
        prop_assert!(flat.splits.is_empty(), "no threshold, no splits");
        let total: f64 = sizes.iter().sum();
        prop_assert!(
            (plan.schedule.total_mb() - total).abs() < 1e-6 * total.max(1.0),
            "split slices {} vs state {total}",
            plan.schedule.total_mb()
        );
        prop_assert!(
            plan.bottleneck_s() <= plan.coarse.bottleneck_s * (1.0 + 1e-9) + 1e-9,
            "split pipelined {} beats physics? coarse {}",
            plan.bottleneck_s(),
            plan.coarse.bottleneck_s
        );
        // The point of splitting: the worst slice any link ships is
        // bounded by the threshold's share of the largest blob (the
        // flat plan's hottest bucket has no such bound).
        let max_blob = sizes.iter().cloned().fold(0.0f64, f64::max);
        let max_mb = plan
            .schedule
            .transfers
            .iter()
            .map(|t| t.mb)
            .fold(0.0f64, f64::max);
        prop_assert!(
            max_mb <= th * max_blob * (1.0 + 1e-9) + 1e-9,
            "slice {max_mb} MB above threshold share {th} of {max_blob}"
        );
        prop_assert!(
            flat.max_pause_s() <= flat.bottleneck_s() + 1e-9,
            "flat pause above makespan"
        );
        for t in &plan.schedule.transfers {
            prop_assert!(t.origin < n_parts, "origin {} out of range", t.origin);
        }
        // The split set is exactly what re-running the detector on a
        // fresh store yields (plan-time/run-time agreement).
        let mut store = wasp_state::StateStore::new(&split_cfg, stream);
        prop_assert_eq!(&store.split_hot(th), &plan.splits);
    }

    /// Scale-out search returns the minimal feasible parallelism.
    #[test]
    fn scale_out_search_is_minimal(
        caps in proptest::collection::vec(1.0f64..100.0, 12..20),
        in_rate in 10.0f64..200.0,
    ) {
        let net = random_network(4, &caps, &[10.0]);
        let mut req = PlacementRequest::new(1);
        req.upstream = vec![(SiteId(0), in_rate)];
        let mut slots = BTreeMap::new();
        for i in 1..4u16 {
            slots.insert(SiteId(i), 4u32);
        }
        req.available_slots = slots;
        if let Some((p, placement, _)) =
            PlacementProblem::minimal_feasible_parallelism(&req, &net, SimTime::ZERO, 1, 12)
        {
            prop_assert_eq!(placement.parallelism(), p);
            // p-1 must be infeasible (when p > 1).
            if p > 1 {
                let mut r = req.clone();
                r.parallelism = p - 1;
                let prob = PlacementProblem::build(&r, &net, SimTime::ZERO);
                prop_assert!(prob.solve().is_none(), "p-1={} should be infeasible", p - 1);
            }
        }
    }
}

/// Enumerates every binary join tree over `n` leaves with every
/// per-node site assignment, returning the minimum evaluated cost —
/// the reference for the subset DP.
fn brute_force_best(problem: &ReplanProblem, net: &Network) -> Option<f64> {
    use wasp_optimizer::replan::JoinTree;
    fn trees(leaves: &[usize], sites: &[SiteId]) -> Vec<JoinTree> {
        if leaves.len() == 1 {
            return vec![JoinTree::Leaf(leaves[0])];
        }
        let mut out = Vec::new();
        // Every split of the leaf set into two non-empty halves (the
        // first leaf stays left to avoid mirror duplicates).
        let n = leaves.len();
        for mask in 0..(1u32 << (n - 1)) {
            let mut left = vec![leaves[0]];
            let mut right = Vec::new();
            for (i, &leaf) in leaves.iter().enumerate().skip(1) {
                if mask & (1 << (i - 1)) != 0 {
                    left.push(leaf);
                } else {
                    right.push(leaf);
                }
            }
            if right.is_empty() {
                continue;
            }
            for l in trees(&left, sites) {
                for r in trees(&right, sites) {
                    for &site in sites {
                        out.push(JoinTree::Node {
                            left: Box::new(l.clone()),
                            right: Box::new(r.clone()),
                            site,
                        });
                    }
                }
            }
        }
        out
    }
    let leaves: Vec<usize> = (0..problem.leaves.len()).collect();
    let candidates = trees(&leaves, &problem.candidate_sites);
    candidates
        .into_iter()
        .map(|t| problem.evaluate(&t, net, SimTime::ZERO).0)
        .min_by(|a, b| a.total_cmp(b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The subset DP finds the globally optimal (tree, placement)
    /// combination: it matches exhaustive enumeration of all binary
    /// trees × per-join site assignments.
    #[test]
    fn join_dp_matches_bruteforce(
        caps in proptest::collection::vec(5.0f64..200.0, 6..12),
        rates in proptest::collection::vec(1.0f64..40.0, 3),
        selectivity in 0.1f64..1.0,
    ) {
        let net = random_network(3, &caps, &[20.0]);
        let leaves: Vec<StreamLeaf> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| StreamLeaf::new(format!("S{i}"), SiteId(i as u16), r))
            .collect();
        let problem = ReplanProblem {
            leaves,
            join_selectivity: selectivity,
            alpha: 0.8,
            required_subtrees: vec![],
            candidate_sites: (0..3).map(SiteId).collect(),
        };
        let dp = problem.solve(&net, SimTime::ZERO).expect("solvable");
        let brute = brute_force_best(&problem, &net).expect("non-empty");
        prop_assert!(
            (dp.cost - brute).abs() < 1e-6 * brute.max(1.0),
            "dp {} vs brute force {brute}",
            dp.cost
        );
    }
}
