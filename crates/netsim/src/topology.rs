//! Static wide-area topology: sites plus pair-wise latency and
//! bandwidth-capacity matrices.
//!
//! The matrices are directed (`B[s1→s2]` may differ from `B[s2→s1]`),
//! matching the paper's notation `ℓ_{s2,s1}` / `B_{s2,s1}` (Table 1).
//! Dynamic bandwidth variation is layered on top by
//! [`crate::network::Network`].

use crate::site::{Site, SiteId, SiteKind};
use crate::units::{Mbps, Millis};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a topology is constructed inconsistently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A matrix entry referenced a site id outside the topology.
    UnknownSite(SiteId),
    /// A latency or bandwidth value was negative or non-finite.
    InvalidValue(String),
    /// The topology has no sites.
    Empty,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownSite(s) => write!(f, "unknown site {s}"),
            TopologyError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            TopologyError::Empty => write!(f, "topology has no sites"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An immutable wide-area topology.
///
/// # Examples
///
/// ```
/// use wasp_netsim::topology::TopologyBuilder;
/// use wasp_netsim::site::SiteKind;
/// use wasp_netsim::units::{Mbps, Millis};
///
/// let mut b = TopologyBuilder::new();
/// let a = b.add_site("a", SiteKind::DataCenter, 8);
/// let c = b.add_site("c", SiteKind::Edge, 2);
/// b.set_link(a, c, Mbps(50.0), Millis(40.0));
/// b.set_link(c, a, Mbps(10.0), Millis(40.0));
/// let topo = b.build()?;
/// assert_eq!(topo.capacity(a, c), Mbps(50.0));
/// assert_eq!(topo.capacity(c, a), Mbps(10.0));
/// # Ok::<(), wasp_netsim::topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    sites: Vec<Site>,
    /// Row-major `m × m`: `latency_ms[from * m + to]`, one-way.
    latency_ms: Vec<f64>,
    /// Row-major `m × m`: `capacity_mbps[from * m + to]`. The diagonal
    /// is `f64::INFINITY` (intra-site), which JSON cannot represent —
    /// hence the adapter.
    #[serde(with = "serde_inf")]
    capacity_mbps: Vec<f64>,
}

/// Serde adapter encoding `f64::INFINITY` entries as `null` (JSON has
/// no infinity literal).
mod serde_inf {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    pub fn serialize<S: Serializer>(v: &[f64], s: S) -> Result<S::Ok, S::Error> {
        let opts: Vec<Option<f64>> = v
            .iter()
            .map(|&x| if x.is_finite() { Some(x) } else { None })
            .collect();
        opts.serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Vec<f64>, D::Error> {
        let opts: Vec<Option<f64>> = Vec::deserialize(d)?;
        Ok(opts
            .into_iter()
            .map(|x| x.unwrap_or(f64::INFINITY))
            .collect())
    }
}

impl Topology {
    /// Number of sites `m`.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// All sites, indexable by [`SiteId::index`].
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// Iterator over all site ids in index order.
    pub fn site_ids(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.sites.len() as u16).map(SiteId)
    }

    /// The site with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not part of this topology.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// One-way latency from `from` to `to`.
    ///
    /// The self-latency `latency(s, s)` is zero unless explicitly set.
    pub fn latency(&self, from: SiteId, to: SiteId) -> Millis {
        Millis(self.latency_ms[from.index() * self.num_sites() + to.index()])
    }

    /// Base (maximum) bandwidth capacity from `from` to `to`.
    ///
    /// Intra-site transfers (`from == to`) are treated as effectively
    /// unconstrained and report `f64::INFINITY` unless a finite value
    /// was set explicitly.
    pub fn capacity(&self, from: SiteId, to: SiteId) -> Mbps {
        Mbps(self.capacity_mbps[from.index() * self.num_sites() + to.index()])
    }

    /// Total slots across all sites.
    pub fn total_slots(&self) -> u32 {
        self.sites.iter().map(Site::slots).sum()
    }

    /// Ids of all sites of the given kind.
    pub fn sites_of_kind(&self, kind: SiteKind) -> Vec<SiteId> {
        self.site_ids()
            .filter(|s| self.site(*s).kind() == kind)
            .collect()
    }

    /// All ordered pairs of distinct sites.
    pub fn directed_pairs(&self) -> Vec<(SiteId, SiteId)> {
        let mut out = Vec::new();
        for a in self.site_ids() {
            for b in self.site_ids() {
                if a != b {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

/// Incremental builder for [`Topology`].
///
/// Links default to infinite intra-site bandwidth / zero latency on the
/// diagonal and zero bandwidth elsewhere, so every inter-site link used
/// by an experiment must be set explicitly (or via
/// [`TopologyBuilder::set_all_links`]).
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    sites: Vec<Site>,
    links: Vec<(SiteId, SiteId, Mbps, Millis)>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Adds a site and returns its id.
    pub fn add_site(&mut self, name: impl Into<String>, kind: SiteKind, slots: u32) -> SiteId {
        let id = SiteId(self.sites.len() as u16);
        self.sites.push(Site::new(name, kind, slots));
        id
    }

    /// Sets the directed link `from → to`.
    pub fn set_link(
        &mut self,
        from: SiteId,
        to: SiteId,
        capacity: Mbps,
        latency: Millis,
    ) -> &mut Self {
        self.links.push((from, to, capacity, latency));
        self
    }

    /// Sets both directions of a link symmetrically.
    pub fn set_symmetric_link(
        &mut self,
        a: SiteId,
        b: SiteId,
        capacity: Mbps,
        latency: Millis,
    ) -> &mut Self {
        self.set_link(a, b, capacity, latency);
        self.set_link(b, a, capacity, latency);
        self
    }

    /// Sets every inter-site link to the same capacity and latency.
    pub fn set_all_links(&mut self, capacity: Mbps, latency: Millis) -> &mut Self {
        let n = self.sites.len() as u16;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    self.set_link(SiteId(a), SiteId(b), capacity, latency);
                }
            }
        }
        self
    }

    /// Validates and freezes the topology.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] if no sites were added, a link
    /// references an unknown site, or a capacity/latency value is
    /// negative or NaN.
    pub fn build(&self) -> Result<Topology, TopologyError> {
        let m = self.sites.len();
        if m == 0 {
            return Err(TopologyError::Empty);
        }
        let mut latency_ms = vec![0.0; m * m];
        let mut capacity_mbps = vec![0.0; m * m];
        for i in 0..m {
            capacity_mbps[i * m + i] = f64::INFINITY;
        }
        for &(from, to, cap, lat) in &self.links {
            if from.index() >= m {
                return Err(TopologyError::UnknownSite(from));
            }
            if to.index() >= m {
                return Err(TopologyError::UnknownSite(to));
            }
            if cap.0.is_nan() || cap.0 < 0.0 {
                return Err(TopologyError::InvalidValue(format!(
                    "capacity {cap} on {from}->{to}"
                )));
            }
            if lat.0.is_nan() || lat.0 < 0.0 || !lat.0.is_finite() {
                return Err(TopologyError::InvalidValue(format!(
                    "latency {lat} on {from}->{to}"
                )));
            }
            capacity_mbps[from.index() * m + to.index()] = cap.0;
            latency_ms[from.index() * m + to.index()] = lat.0;
        }
        Ok(Topology {
            sites: self.sites.clone(),
            latency_ms,
            capacity_mbps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_sites() -> (Topology, SiteId, SiteId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a", SiteKind::DataCenter, 8);
        let c = b.add_site("c", SiteKind::Edge, 2);
        b.set_link(a, c, Mbps(100.0), Millis(50.0));
        b.set_link(c, a, Mbps(10.0), Millis(55.0));
        (b.build().unwrap(), a, c)
    }

    #[test]
    fn directed_links_are_independent() {
        let (t, a, c) = two_sites();
        assert_eq!(t.capacity(a, c), Mbps(100.0));
        assert_eq!(t.capacity(c, a), Mbps(10.0));
        assert_eq!(t.latency(a, c), Millis(50.0));
        assert_eq!(t.latency(c, a), Millis(55.0));
    }

    #[test]
    fn diagonal_is_unconstrained() {
        let (t, a, _) = two_sites();
        assert_eq!(t.capacity(a, a).0, f64::INFINITY);
        assert_eq!(t.latency(a, a), Millis(0.0));
    }

    #[test]
    fn unset_links_have_zero_capacity() {
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a", SiteKind::Edge, 1);
        let c = b.add_site("c", SiteKind::Edge, 1);
        let t = b.build().unwrap();
        assert_eq!(t.capacity(a, c), Mbps::ZERO);
    }

    #[test]
    fn empty_topology_rejected() {
        assert_eq!(
            TopologyBuilder::new().build().unwrap_err(),
            TopologyError::Empty
        );
    }

    #[test]
    fn negative_capacity_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a", SiteKind::Edge, 1);
        let c = b.add_site("c", SiteKind::Edge, 1);
        b.set_link(a, c, Mbps(-1.0), Millis(1.0));
        assert!(matches!(
            b.build().unwrap_err(),
            TopologyError::InvalidValue(_)
        ));
    }

    #[test]
    fn unknown_site_rejected() {
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a", SiteKind::Edge, 1);
        b.set_link(a, SiteId(9), Mbps(1.0), Millis(1.0));
        assert_eq!(
            b.build().unwrap_err(),
            TopologyError::UnknownSite(SiteId(9))
        );
    }

    #[test]
    fn totals_and_filters() {
        let (t, _, _) = two_sites();
        assert_eq!(t.total_slots(), 10);
        assert_eq!(t.sites_of_kind(SiteKind::Edge).len(), 1);
        assert_eq!(t.directed_pairs().len(), 2);
    }

    #[test]
    fn symmetric_and_all_links_helpers() {
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a", SiteKind::Edge, 1);
        let c = b.add_site("c", SiteKind::Edge, 1);
        let d = b.add_site("d", SiteKind::Edge, 1);
        b.set_all_links(Mbps(5.0), Millis(10.0));
        b.set_symmetric_link(a, c, Mbps(20.0), Millis(1.0));
        let t = b.build().unwrap();
        assert_eq!(t.capacity(a, c), Mbps(20.0));
        assert_eq!(t.capacity(c, a), Mbps(20.0));
        assert_eq!(t.capacity(a, d), Mbps(5.0));
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn topology_survives_a_serde_round_trip() {
        let mut b = TopologyBuilder::new();
        let a = b.add_site("a", SiteKind::DataCenter, 8);
        let c = b.add_site("c", SiteKind::Edge, 2);
        b.set_link(a, c, Mbps(50.0), Millis(40.0));
        b.set_link(c, a, Mbps(10.0), Millis(45.0));
        let topo = b.build().unwrap();
        let json = serde_json::to_string(&topo).expect("serializes");
        let back: Topology = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.num_sites(), 2);
        assert_eq!(back.capacity(a, c), Mbps(50.0));
        assert_eq!(back.latency(c, a), Millis(45.0));
        assert_eq!(back.site(c).kind(), SiteKind::Edge);
    }
}
