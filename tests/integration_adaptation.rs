//! End-to-end adaptation behaviour: the §8.4/§8.5 claims as
//! assertions.
//!
//! These tests run the actual experiments (at a coarser tick than the
//! figure harness) and check the paper's qualitative results: who
//! wins, what actions fire, and the quality/latency trade-off.

use wasp_workloads::prelude::*;

fn cfg() -> ScenarioConfig {
    ScenarioConfig {
        dt: 0.5,
        ..ScenarioConfig::default()
    }
}

fn late_delay(res: &ExperimentResult, from: f64, to: f64) -> f64 {
    res.metrics
        .delay_quantile_between(from, to, 0.5)
        .unwrap_or(0.0)
}

#[test]
fn section_8_4_no_adapt_suffers_wasp_recovers_degrade_drops() {
    for kind in QueryKind::ALL {
        let noadapt = run_section_8_4(kind, ControllerKind::NoAdapt, &cfg());
        let degrade = run_section_8_4(kind, ControllerKind::Degrade, &cfg());
        let wasp = run_section_8_4(kind, ControllerKind::Wasp, &cfg());

        // No Adapt: delay grows by over an order of magnitude during
        // the constrained phases; no events dropped.
        let na_base = late_delay(&noadapt, 100.0, 300.0);
        let na_worst = noadapt
            .metrics
            .delay_quantile_between(300.0, 1500.0, 0.95)
            .expect("deliveries");
        assert!(
            na_worst > 8.0 * na_base,
            "{}: No Adapt worst {na_worst} vs base {na_base}",
            kind.name()
        );
        assert_eq!(noadapt.metrics.total_dropped(), 0.0);

        // Degrade: delay bounded by the SLO class, but events are
        // lost. Dropping happens at monitor granularity, so the p95
        // can overshoot the 10 s SLO by a drain interval (Top-K
        // measures 12.16 at the default seed) while staying an order
        // of magnitude under No Adapt's worst.
        let dg_worst = degrade
            .metrics
            .delay_quantile_between(300.0, 1500.0, 0.95)
            .expect("deliveries");
        assert!(dg_worst < 15.0, "{}: Degrade p95 {dg_worst}", kind.name());
        assert!(
            dg_worst < na_worst / 2.0,
            "{}: Degrade p95 {dg_worst} vs No Adapt {na_worst}",
            kind.name()
        );
        assert!(
            degrade.metrics.dropped_fraction() > 0.02,
            "{}: Degrade dropped {}",
            kind.name(),
            degrade.metrics.dropped_fraction()
        );

        // WASP: adapts, keeps every event, and ends the run at the
        // baseline delay.
        assert_eq!(wasp.metrics.total_dropped(), 0.0);
        let w_end = late_delay(&wasp, 1300.0, 1500.0);
        let w_base = late_delay(&wasp, 100.0, 300.0);
        assert!(
            w_end < 2.0 * w_base,
            "{}: WASP end delay {w_end} vs base {w_base}",
            kind.name()
        );
        let actions: Vec<&str> = wasp
            .metrics
            .actions()
            .iter()
            .filter(|(_, a)| !a.starts_with("transition") && !a.contains("failed"))
            .map(|(_, a)| a.as_str())
            .collect();
        assert!(!actions.is_empty(), "{}: no adaptations", kind.name());
        // The workload phase is resolved by re-optimization (re-assign
        // or re-plan). Which further actions fire is seed-dependent:
        // at the default seed the audit trail (wasp-report --scenario
        // section_8_4 --seed 4) shows the WAN-aware placements chosen
        // during the workload phase already tolerate the 0.3×
        // bandwidth drop — every post-drop monitor round diagnoses
        // healthy — so demanding a scale-out would require a more
        // expensive action than any diagnosed bottleneck needs. The
        // recovery itself is pinned by the delay/drop assertions
        // above; here we only require that every action taken is a
        // legal Fig. 6 policy action.
        assert!(
            actions.iter().any(|a| *a == "re-assign" || *a == "re-plan"),
            "{}: {actions:?}",
            kind.name()
        );
        const POLICY_ACTIONS: [&str; 5] = [
            "re-assign",
            "re-plan",
            "scale up",
            "scale out",
            "scale down",
        ];
        for a in &actions {
            assert!(
                POLICY_ACTIONS.contains(a) || a.starts_with("emergency"),
                "{}: unknown action {a:?}",
                kind.name()
            );
        }
    }
}

#[test]
fn section_8_4_wasp_beats_baselines_on_quality_and_delay() {
    let degrade = run_section_8_4(QueryKind::TopK, ControllerKind::Degrade, &cfg());
    let wasp = run_section_8_4(QueryKind::TopK, ControllerKind::Wasp, &cfg());
    // Same delay class as Degrade…
    let d95 = wasp
        .metrics
        .delay_quantile_between(700.0, 900.0, 0.95)
        .unwrap();
    assert!(d95 < 12.0, "WASP p95 after adaptation {d95}");
    // …without sacrificing any events.
    assert_eq!(wasp.metrics.total_dropped(), 0.0);
    assert!(degrade.metrics.total_dropped() > 0.0);
}

#[test]
fn section_8_5_scale_wins_and_replan_crosses_reassign() {
    let noadapt = run_section_8_5(ControllerKind::NoAdapt, &cfg());
    let reassign = run_section_8_5(ControllerKind::ReassignOnly, &cfg());
    let scale = run_section_8_5(ControllerKind::ScaleOnly, &cfg());
    let replan = run_section_8_5(ControllerKind::ReplanOnly, &cfg());

    let p = |r: &ExperimentResult, q: f64| r.metrics.delay_quantile(q).unwrap_or(f64::INFINITY);

    // Every adapting technique beats No Adapt at the 90th percentile.
    for r in [&reassign, &scale, &replan] {
        assert!(
            p(r, 0.9) < p(&noadapt, 0.9),
            "{} p90 {} vs NoAdapt {}",
            r.label,
            p(r, 0.9),
            p(&noadapt, 0.9)
        );
    }
    // Scale has the lowest tail delay (Fig. 10a).
    assert!(p(&scale, 0.93) < p(&reassign, 0.93));
    assert!(p(&scale, 0.93) < p(&replan, 0.93));
    // The paper's crossover: Re-plan matches/beats Re-assign for the
    // majority of events but loses in the tail (the paper saw the
    // crossover at the 93rd percentile; ours sits near the 85th —
    // see EXPERIMENTS.md).
    assert!(
        p(&replan, 0.7) <= p(&reassign, 0.7) + 2.5,
        "bulk: replan {} vs reassign {}",
        p(&replan, 0.7),
        p(&reassign, 0.7)
    );
    assert!(
        p(&replan, 0.93) >= p(&reassign, 0.93),
        "tail: replan {} vs reassign {}",
        p(&replan, 0.93),
        p(&reassign, 0.93)
    );
    // Scale acquires extra slots during the constrained phase and
    // releases them afterwards (Fig. 10c).
    let tasks = scale.metrics.parallelism_series();
    let base = tasks[0].1;
    let peak = tasks.iter().map(|&(_, p)| p).max().unwrap();
    let last = tasks.last().unwrap().1;
    assert!(peak > base, "Scale must acquire tasks");
    assert!(last < peak, "Scale must release tasks after recovery");
    // Re-assign and Re-plan never change the parallelism.
    for r in [&reassign, &replan] {
        let series = r.metrics.parallelism_series();
        assert!(
            series.iter().all(|&(_, p)| p == series[0].1),
            "{} changed parallelism",
            r.label
        );
    }
}

#[test]
fn join_replanner_preserves_stateful_subplan_end_to_end() {
    use wasp_core::prelude::*;
    use wasp_netsim::prelude::*;
    use wasp_streamsim::prelude::*;

    let mut b = TopologyBuilder::new();
    let sites: Vec<SiteId> = (0..4)
        .map(|i| b.add_site(format!("s{i}"), SiteKind::DataCenter, 8))
        .collect();
    let sink = b.add_site("sink", SiteKind::DataCenter, 8);
    b.set_all_links(Mbps(60.0), Millis(20.0));
    let mut net = Network::new(b.build().unwrap());
    net.set_pair_factor(sites[2], sink, FactorSeries::steps(1.0, &[(200.0, 0.02)]));

    let query = JoinQuery::fig5([sites[0], sites[1], sites[2], sites[3]], sink, 0.5);
    let (plan, physical) = query.plan_from_tree(&query.default_tree());
    let mut engine = Engine::new(
        net,
        wasp_netsim::dynamics::DynamicsScript::none(),
        plan,
        physical,
        EngineConfig {
            dt: 0.5,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let mut wasp = WaspController::with_replanner(
        PolicyConfig {
            allow_reassign: false,
            allow_scale: false,
            scale_down: false,
            ..PolicyConfig::default()
        },
        Box::new(JoinOrderReplanner::new(query.clone())),
    );
    run_controlled(&mut engine, &mut wasp, 600.0, 40.0);
    // A re-plan happened…
    assert!(engine
        .metrics()
        .actions()
        .iter()
        .any(|(_, a)| a == "re-plan"));
    // …and the new plan still contains the stateful common sub-plan
    // C ⋈ D.
    let plan = engine.plan();
    assert!(
        plan.op_ids().any(|op| plan.op(op).name() == "join[C,D]"),
        "stateful sub-plan must be preserved"
    );
    // The query keeps delivering after the switch.
    let late: f64 = engine
        .metrics()
        .ticks()
        .iter()
        .filter(|r| r.t > 400.0)
        .map(|r| r.delivered)
        .sum();
    assert!(late > 0.0);
}
