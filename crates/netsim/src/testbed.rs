//! The paper's 16-node evaluation testbed (§8.2, Fig. 7).
//!
//! 8 data-center nodes model the Amazon EC2 regions the authors
//! measured (Oregon, Ohio, Ireland, Frankfurt, Seoul, Singapore,
//! Mumbai, São Paulo; 8 slots each) and 8 edge nodes (2–4 slots each)
//! are attached over public-Internet links whose bandwidth follows the
//! Akamai-reported average of <10 Mbps. Inter-DC bandwidths are drawn
//! deterministically from the measured range, and latencies come from a
//! hard-coded matrix of realistic one-way delays.

use crate::network::Network;
use crate::site::{SiteId, SiteKind};
use crate::topology::{Topology, TopologyBuilder};
use crate::trace::Ec2TraceGenerator;
use crate::units::{Mbps, Millis};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Names of the 8 EC2 regions used in the paper's measurement.
pub const REGIONS: [&str; 8] = [
    "oregon",
    "ohio",
    "ireland",
    "frankfurt",
    "seoul",
    "singapore",
    "mumbai",
    "sao-paulo",
];

/// Approximate round-trip times (ms) between the 8 regions, upper
/// triangle; one-way latency is half the RTT.
const RTT_MS: [[f64; 8]; 8] = [
    //  OR     OH     IR     FR     SE     SG     MU     SP
    [0.0, 70.0, 130.0, 150.0, 130.0, 170.0, 220.0, 180.0], // oregon
    [70.0, 0.0, 80.0, 100.0, 180.0, 220.0, 200.0, 140.0],  // ohio
    [130.0, 80.0, 0.0, 25.0, 250.0, 180.0, 120.0, 180.0],  // ireland
    [150.0, 100.0, 25.0, 0.0, 240.0, 160.0, 110.0, 200.0], // frankfurt
    [130.0, 180.0, 250.0, 240.0, 0.0, 70.0, 130.0, 300.0], // seoul
    [170.0, 220.0, 180.0, 160.0, 70.0, 0.0, 60.0, 330.0],  // singapore
    [220.0, 200.0, 120.0, 110.0, 130.0, 60.0, 0.0, 300.0], // mumbai
    [180.0, 140.0, 180.0, 200.0, 300.0, 330.0, 300.0, 0.0], // sao-paulo
];

/// The paper's 16-node testbed: site ids grouped by role plus the
/// frozen topology.
#[derive(Debug, Clone)]
pub struct Testbed {
    topology: Topology,
    edges: Vec<SiteId>,
    data_centers: Vec<SiteId>,
    seed: u64,
}

/// Configuration for building a [`Testbed`].
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Number of data-center sites (the paper used 8).
    pub data_centers: usize,
    /// Number of edge sites (the paper used 8).
    pub edges: usize,
    /// Slots per data-center node (the paper used 8).
    pub dc_slots: u32,
    /// Slots per edge node cycle through this list (the paper used
    /// 2–4).
    pub edge_slot_cycle: Vec<u32>,
    /// Inter-DC bandwidth range (Fig. 7a shows roughly 25–250 Mbps).
    pub dc_bandwidth_range: (f64, f64),
    /// Edge link bandwidth range (Akamai: average <10 Mbps).
    pub edge_bandwidth_range: (f64, f64),
    /// Seed for deterministic bandwidth draws.
    pub seed: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            data_centers: 8,
            edges: 8,
            dc_slots: 8,
            edge_slot_cycle: vec![2, 3, 4],
            dc_bandwidth_range: (40.0, 240.0),
            edge_bandwidth_range: (2.0, 10.0),
            seed: 0x5741_5350, // "WASP"
        }
    }
}

impl Testbed {
    /// Builds the paper's default 16-node testbed with the given seed.
    pub fn paper(seed: u64) -> Testbed {
        Testbed::with_config(TestbedConfig {
            seed,
            ..TestbedConfig::default()
        })
    }

    /// Builds a testbed from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration asks for more data centers than
    /// there are region latencies (8) with zero sites, or empty slot
    /// cycle.
    pub fn with_config(cfg: TestbedConfig) -> Testbed {
        assert!(cfg.data_centers >= 1 && cfg.data_centers <= 8);
        assert!(!cfg.edge_slot_cycle.is_empty());
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut b = TopologyBuilder::new();

        let mut dcs = Vec::new();
        for region in REGIONS.iter().take(cfg.data_centers) {
            dcs.push(b.add_site(*region, SiteKind::DataCenter, cfg.dc_slots));
        }
        let mut edges = Vec::new();
        for e in 0..cfg.edges {
            let slots = cfg.edge_slot_cycle[e % cfg.edge_slot_cycle.len()];
            edges.push(b.add_site(format!("edge-{e}"), SiteKind::Edge, slots));
        }

        // DC <-> DC links: latency from the RTT matrix, bandwidth drawn
        // per *directed* pair (WAN bandwidth is asymmetric in
        // practice).
        let (dlo, dhi) = cfg.dc_bandwidth_range;
        for i in 0..cfg.data_centers {
            for j in 0..cfg.data_centers {
                if i == j {
                    continue;
                }
                let lat = Millis(RTT_MS[i][j] / 2.0);
                let bw = Mbps(rng.gen_range(dlo..=dhi));
                b.set_link(dcs[i], dcs[j], bw, lat);
            }
        }

        // Edge links: each edge has a home region; public-Internet
        // paths differ per destination, so bandwidth is drawn per
        // (edge, DC) pair.
        let (elo, ehi) = cfg.edge_bandwidth_range;
        for (e, &edge) in edges.iter().enumerate() {
            let home = e % cfg.data_centers;
            for (r, &dc) in dcs.iter().enumerate() {
                let up = Mbps(rng.gen_range(elo..=ehi));
                let down = Mbps(rng.gen_range(elo..=ehi));
                let base = Millis(RTT_MS[home][r] / 2.0);
                let access = Millis(rng.gen_range(5.0..=25.0));
                b.set_link(edge, dc, up, base + access);
                b.set_link(dc, edge, down, base + access);
            }
        }
        // Edge <-> edge links route over the public Internet through
        // their home regions.
        for (e1, &a) in edges.iter().enumerate() {
            for (e2, &c) in edges.iter().enumerate() {
                if e1 == e2 {
                    continue;
                }
                let h1 = e1 % cfg.data_centers;
                let h2 = e2 % cfg.data_centers;
                let lat = Millis(RTT_MS[h1][h2] / 2.0 + rng.gen_range(10.0..=50.0));
                let bw = Mbps(rng.gen_range(elo..=ehi));
                b.set_link(a, c, bw, lat);
            }
        }

        Testbed {
            topology: b.build().expect("testbed construction is internally valid"),
            edges,
            data_centers: dcs,
            seed: cfg.seed,
        }
    }

    /// The frozen topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Ids of the edge sites.
    pub fn edges(&self) -> &[SiteId] {
        &self.edges
    }

    /// Ids of the data-center sites.
    pub fn data_centers(&self) -> &[SiteId] {
        &self.data_centers
    }

    /// A static network (no bandwidth variation) over this testbed.
    pub fn static_network(&self) -> Network {
        Network::new(self.topology.clone())
    }

    /// A network whose inter-DC links follow 1-day EC2-style variation
    /// traces (Fig. 2 statistics), seeded deterministically per pair.
    pub fn network_with_ec2_dynamics(&self) -> Network {
        let mut net = Network::new(self.topology.clone());
        let gen = Ec2TraceGenerator::default();
        for (i, &a) in self.data_centers.iter().enumerate() {
            for (j, &c) in self.data_centers.iter().enumerate() {
                if a != c {
                    let pair_seed = self
                        .seed
                        .wrapping_mul(1_000_003)
                        .wrapping_add((i * 64 + j) as u64);
                    net.set_pair_factor(a, c, gen.generate(pair_seed));
                }
            }
        }
        net
    }

    /// All inter-site bandwidths of a role class, for the Fig. 7a CDF.
    ///
    /// As in the paper, "edge" considers only links between an edge
    /// node and data centers in its region plus other edges, while "dc"
    /// considers DC-to-DC links.
    pub fn bandwidth_samples(&self, kind: SiteKind) -> Vec<f64> {
        let mut out = Vec::new();
        match kind {
            SiteKind::DataCenter => {
                for &a in &self.data_centers {
                    for &c in &self.data_centers {
                        if a != c {
                            out.push(self.topology.capacity(a, c).0);
                        }
                    }
                }
            }
            SiteKind::Edge => {
                for &a in &self.edges {
                    for c in self.topology.site_ids() {
                        if a != c {
                            out.push(self.topology.capacity(a, c).0);
                        }
                    }
                }
            }
        }
        out
    }

    /// All inter-site latencies of a role class, for the Fig. 7b CDF.
    pub fn latency_samples(&self, kind: SiteKind) -> Vec<f64> {
        let mut out = Vec::new();
        match kind {
            SiteKind::DataCenter => {
                for &a in &self.data_centers {
                    for &c in &self.data_centers {
                        if a != c {
                            out.push(self.topology.latency(a, c).0);
                        }
                    }
                }
            }
            SiteKind::Edge => {
                for &a in &self.edges {
                    for c in self.topology.site_ids() {
                        if a != c {
                            out.push(self.topology.latency(a, c).0);
                        }
                    }
                }
            }
        }
        out
    }
}

use std::fmt;
impl fmt::Display for Testbed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "testbed: {} DCs + {} edges, {} slots total",
            self.data_centers.len(),
            self.edges.len(),
            self.topology.total_slots()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::summarize;
    use crate::units::SimTime;

    #[test]
    fn paper_testbed_shape() {
        let tb = Testbed::paper(1);
        assert_eq!(tb.data_centers().len(), 8);
        assert_eq!(tb.edges().len(), 8);
        assert_eq!(tb.topology().num_sites(), 16);
        // 8 DC * 8 slots + edges cycling 2,3,4 = 64 + (2+3+4)*2 + 2+3 = 64+23
        let edge_slots: u32 = tb
            .edges()
            .iter()
            .map(|&e| tb.topology().site(e).slots())
            .sum();
        assert_eq!(edge_slots, 2 + 3 + 4 + 2 + 3 + 4 + 2 + 3);
        for &e in tb.edges() {
            assert!((2..=4).contains(&tb.topology().site(e).slots()));
        }
    }

    #[test]
    fn dc_bandwidths_match_measured_range() {
        let tb = Testbed::paper(2);
        let bws = tb.bandwidth_samples(SiteKind::DataCenter);
        assert_eq!(bws.len(), 8 * 7);
        let s = summarize(&bws).unwrap();
        assert!(s.min >= 40.0 && s.max <= 240.0, "range {s:?}");
    }

    #[test]
    fn edge_bandwidths_are_sub_10mbps() {
        let tb = Testbed::paper(2);
        let bws = tb.bandwidth_samples(SiteKind::Edge);
        let s = summarize(&bws).unwrap();
        assert!(s.max <= 10.0, "edge links must be <10 Mbps, got {}", s.max);
        assert!(s.min >= 2.0);
    }

    #[test]
    fn latencies_are_heterogeneous() {
        // The paper stresses that WAN links vary by orders of
        // magnitude; the testbed's latency spread should be wide.
        let tb = Testbed::paper(3);
        let lats = tb.latency_samples(SiteKind::DataCenter);
        let s = summarize(&lats).unwrap();
        assert!(s.min <= 15.0, "closest pair {}", s.min);
        assert!(s.max >= 150.0, "farthest pair {}", s.max);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Testbed::paper(7);
        let b = Testbed::paper(7);
        let c = Testbed::paper(8);
        let pair = (a.data_centers()[0], a.data_centers()[1]);
        assert_eq!(
            a.topology().capacity(pair.0, pair.1),
            b.topology().capacity(pair.0, pair.1)
        );
        // Different seeds draw different bandwidths somewhere.
        let diff = a
            .topology()
            .directed_pairs()
            .iter()
            .any(|&(x, y)| a.topology().capacity(x, y) != c.topology().capacity(x, y));
        assert!(diff);
    }

    #[test]
    fn ec2_dynamics_vary_dc_links_only() {
        let tb = Testbed::paper(4);
        let net = tb.network_with_ec2_dynamics();
        let a = tb.data_centers()[0];
        let c = tb.data_centers()[1];
        let base = tb.topology().capacity(a, c);
        let mut saw_change = false;
        for k in 0..48 {
            let t = SimTime(k as f64 * 1800.0);
            if (net.available(a, c, t) / base - 1.0).abs() > 0.05 {
                saw_change = true;
            }
        }
        assert!(saw_change, "EC2 trace should move the DC link");
        // Edge links keep their base capacity.
        let e = tb.edges()[0];
        assert_eq!(
            net.available(e, a, SimTime(4000.0)),
            tb.topology().capacity(e, a)
        );
    }

    #[test]
    fn latency_symmetry_between_dcs() {
        let tb = Testbed::paper(5);
        for &a in tb.data_centers() {
            for &c in tb.data_centers() {
                assert_eq!(tb.topology().latency(a, c), tb.topology().latency(c, a));
            }
        }
    }
}
