//! Offline stand-in for `serde`, covering the subset this workspace
//! uses. The design funnels every value through a small self-describing
//! content tree ([`content::Content`]) instead of serde's visitor
//! machinery: `Serialize` lowers a value to `Content`, a `Serializer`
//! consumes a `Content`, and the reverse for deserialization. The
//! public trait *shapes* (`Serialize::serialize<S: Serializer>`,
//! `Deserialize<'de>`, associated `Ok`/`Error` types, `with = "module"`
//! adapters) match upstream serde closely enough that the workspace
//! code and the doc examples compile unchanged.

pub mod content;
pub mod de;
pub mod ser;

mod impls;

pub use crate::de::{Deserialize, Deserializer};
pub use crate::ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
