//! Validates the `wasp-metrics` streaming histogram against exact
//! quantiles on seeded draws from the crate's own distributions: the
//! sketch (and merges of sketches) must stay within 1% relative error
//! of `stats::quantile_sorted` over the same samples.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wasp_metrics::LogHistogram;
use wasp_netsim::stats::{self, Zipf};

const QUANTILES: [f64; 5] = [0.1, 0.5, 0.9, 0.95, 0.99];

/// Asserts the sketch quantile is within 1% relative error of the
/// exact sample quantile, for every probe quantile.
fn assert_close(hist: &LogHistogram, samples: &mut [f64], what: &str) {
    samples.sort_by(|a, b| a.total_cmp(b));
    for q in QUANTILES {
        let exact = stats::quantile_sorted(samples, q);
        let est = hist.quantile(q).expect("non-empty histogram");
        let rel = (est - exact).abs() / exact.abs().max(1e-12);
        assert!(
            rel <= 0.01,
            "{what}: q={q} exact={exact} est={est} rel={rel}"
        );
    }
    // Extremes are tracked exactly.
    assert_eq!(hist.quantile(0.0), Some(samples[0]));
    assert_eq!(hist.quantile(1.0), Some(*samples.last().unwrap()));
}

#[test]
fn normal_draws_match_exact_quantiles() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut hist = LogHistogram::default();
    let mut samples = Vec::new();
    for _ in 0..20_000 {
        // Delay-like values: a positive, right-shifted normal.
        let v = stats::normal(&mut rng, 10.0, 2.0).max(0.05);
        hist.observe(v, 1.0);
        samples.push(v);
    }
    assert_close(&hist, &mut samples, "normal(10, 2)");
}

#[test]
fn zipf_draws_match_exact_quantiles() {
    let mut rng = StdRng::seed_from_u64(11);
    let zipf = Zipf::new(10_000, 1.1);
    let mut hist = LogHistogram::default();
    let mut samples = Vec::new();
    for _ in 0..20_000 {
        let v = (zipf.sample(&mut rng) + 1) as f64;
        hist.observe(v, 1.0);
        samples.push(v);
    }
    assert_close(&hist, &mut samples, "zipf(10000, 1.1)");
}

#[test]
fn merged_shards_match_exact_quantiles_of_the_union() {
    // Four independent shards (as if scraped from four sites), each
    // with a different mix of distributions, merged into one sketch:
    // the merge must answer for the union of all samples.
    let mut merged = LogHistogram::default();
    let mut samples = Vec::new();
    for shard in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(100 + shard);
        let mut hist = LogHistogram::default();
        for i in 0..5_000 {
            let v = if i % 2 == 0 {
                stats::normal(&mut rng, 5.0 + shard as f64, 1.0).max(0.01)
            } else {
                stats::truncated_normal(&mut rng, 50.0, 20.0, 1.0, 200.0)
            };
            hist.observe(v, 1.0);
            samples.push(v);
        }
        merged.merge(&hist);
    }
    assert_close(&merged, &mut samples, "4-shard merged mixture");
}

#[test]
fn empty_histogram_has_no_quantiles() {
    let hist = LogHistogram::default();
    assert!(hist.is_empty());
    assert_eq!(hist.quantile(0.5), None);
    assert_eq!(hist.mean(), None);
}

#[test]
fn single_sample_is_every_quantile() {
    let mut hist = LogHistogram::default();
    hist.observe(3.25, 1.0);
    for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
        assert_eq!(hist.quantile(q), Some(3.25), "q={q}");
    }
}

#[test]
fn extreme_magnitudes_keep_exact_min_and_max() {
    // Values spanning 24 orders of magnitude exceed the bucket
    // budget; interior quantiles degrade gracefully but the tracked
    // extremes stay exact and the memory stays bounded.
    let mut hist = LogHistogram::default();
    hist.observe(1e-12, 1.0);
    hist.observe(1.0, 1.0);
    hist.observe(1e12, 1.0);
    assert_eq!(hist.quantile(0.0), Some(1e-12));
    assert_eq!(hist.quantile(1.0), Some(1e12));
    assert!(hist.bucket_count() <= 4096);
}
