//! Exporters: Chrome trace JSON, JSONL event log, plain-text report.
//!
//! All three are pure functions of a [`Recording`], and a recording is
//! a pure function of (scenario, seed): timestamps are simulated
//! seconds, so exports are byte-stable across runs and machines.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::event::Event;
use crate::sink::{Entry, Recording};

/// Error from a fallible exporter. Exporters return this instead of
/// panicking so CLI tools can surface a diagnostic and exit cleanly.
#[derive(Debug)]
pub enum ExportError {
    /// A log entry failed to serialize to JSON.
    Serialize(serde_json::Error),
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Serialize(e) => write!(f, "log entry does not serialize: {e}"),
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExportError::Serialize(e) => Some(e),
        }
    }
}

impl From<serde_json::Error> for ExportError {
    fn from(e: serde_json::Error) -> ExportError {
        ExportError::Serialize(e)
    }
}

/// Span names that follow strict LIFO nesting on the control thread.
/// These become `ph:"B"`/`ph:"E"` pairs; everything else (engine
/// transitions, checkpoints — which may overlap) becomes `ph:"X"`
/// complete events on the engine thread.
fn is_control_span(name: &str) -> bool {
    name.starts_with("scenario")
        || name.starts_with("handle:")
        || name.starts_with("candidate:")
        || name == "monitor-round"
        || name == "emergency-round"
        || name == "diagnosis"
        || name == "decide"
        || name == "apply"
}

fn micros(t: f64) -> u64 {
    (t * 1e6).round() as u64
}

/// JSON string literal, hand-escaped so the trace path has no
/// fallible serialization step at all.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Export as Chrome `about://tracing` / Perfetto JSON.
///
/// Events are emitted in log order, so `ts` is monotonically
/// non-decreasing; control spans nest via duration-begin/end pairs and
/// engine spans are independent complete events.
pub fn to_chrome_trace(rec: &Recording) -> Result<String, ExportError> {
    let spans = rec.spans();
    let end_time = rec.end_time();
    let mut lines: Vec<String> = Vec::new();
    // Remember which control spans we opened so stragglers can be
    // closed at the end of the trace (Chrome requires balanced B/E).
    let mut open_control: Vec<u64> = Vec::new();

    for e in &rec.log {
        match &e.entry {
            Entry::SpanBegin { id, name, .. } => {
                if is_control_span(name) {
                    lines.push(format!(
                        "{{\"name\":{},\"cat\":\"control\",\"ph\":\"B\",\"ts\":{},\"pid\":0,\"tid\":1}}",
                        json_str(name),
                        micros(e.t)
                    ));
                    open_control.push(*id);
                } else {
                    let end = spans
                        .iter()
                        .find(|s| s.id == *id)
                        .and_then(|s| s.end)
                        .unwrap_or(end_time);
                    lines.push(format!(
                        "{{\"name\":{},\"cat\":\"engine\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":2}}",
                        json_str(name),
                        micros(e.t),
                        micros(end).saturating_sub(micros(e.t))
                    ));
                }
            }
            Entry::SpanEnd { id } => {
                if let Some(pos) = open_control.iter().rposition(|open| open == id) {
                    open_control.remove(pos);
                    lines.push(format!(
                        "{{\"ph\":\"E\",\"ts\":{},\"pid\":0,\"tid\":1}}",
                        micros(e.t)
                    ));
                }
            }
            Entry::Event(ev) => {
                lines.push(format!(
                    "{{\"name\":{},\"cat\":\"event\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":1,\"s\":\"t\",\"args\":{{\"detail\":{}}}}}",
                    json_str(ev.kind()),
                    micros(e.t),
                    json_str(&ev.render())
                ));
            }
        }
    }
    // Balance any spans still open when the run ended.
    for _ in open_control.drain(..).rev() {
        lines.push(format!(
            "{{\"ph\":\"E\",\"ts\":{},\"pid\":0,\"tid\":1}}",
            micros(end_time)
        ));
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]}\n");
    Ok(out)
}

/// Export the raw log as JSON Lines, one entry per line.
pub fn to_jsonl(rec: &Recording) -> Result<String, ExportError> {
    let mut out = String::new();
    for entry in &rec.log {
        out.push_str(&serde_json::to_string(entry)?);
        out.push('\n');
    }
    Ok(out)
}

/// Render the plain-text run report: the decision audit (per monitor
/// round), per-stage timelines, and a summary.
pub fn render_report(rec: &Recording, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "WASP run report — {title}");
    let _ = writeln!(out, "{}", "=".repeat(18 + title.chars().count()));
    let _ = writeln!(out);
    let _ = writeln!(out, "Decision audit");
    let _ = writeln!(out, "--------------");

    let mut rounds = 0usize;
    let mut decisions = 0usize;
    let mut rejections = 0usize;
    let mut migrations = 0usize;
    let mut aborted = 0usize;
    let mut checkpoints = 0usize;

    for e in &rec.log {
        match &e.entry {
            Entry::SpanBegin { name, .. }
                if name == "monitor-round" || name == "emergency-round" =>
            {
                rounds += 1;
                let _ = writeln!(out, "[t={:>7.1}] {}", e.t, name);
            }
            Entry::Event(ev) => {
                match ev {
                    Event::DecisionTaken { .. } => decisions += 1,
                    Event::CandidateRejected { .. } => rejections += 1,
                    Event::MigrationStarted { .. } => migrations += 1,
                    Event::MigrationAborted { .. } => aborted += 1,
                    Event::CheckpointRound { .. } => checkpoints += 1,
                    _ => {}
                }
                match ev {
                    // Engine-side events get their own timestamped
                    // lines; controller-round events are indented under
                    // the round header.
                    Event::MigrationStarted { .. }
                    | Event::MigrationCompleted { .. }
                    | Event::MigrationAborted { .. }
                    | Event::SiteDown { .. }
                    | Event::SiteRestored { .. }
                    | Event::CheckpointStalled { .. }
                    | Event::ChaosFault { .. }
                    | Event::DynamicsTransition { .. } => {
                        let _ = writeln!(out, "[t={:>7.1}]   * {}", e.t, ev.render());
                    }
                    // Per-partition records are rendered by the report's
                    // dedicated state-timeline section, not the audit.
                    Event::CheckpointRound { .. }
                    | Event::CheckpointDelta { .. }
                    | Event::PartitionSplit { .. }
                    | Event::PartitionTransferStarted { .. }
                    | Event::PartitionTransferCompleted { .. }
                    | Event::Note { .. } => {}
                    _ => {
                        let _ = writeln!(out, "            {}", ev.render());
                    }
                }
            }
            _ => {}
        }
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "Per-stage timeline");
    let _ = writeln!(out, "------------------");
    // Health transitions per operator, in operator order.
    let mut last_health: BTreeMap<u32, String> = BTreeMap::new();
    let mut per_op: BTreeMap<u32, (String, Vec<String>)> = BTreeMap::new();
    for (t, _, ev) in rec.events() {
        if let Event::Diagnosis {
            op,
            name,
            health,
            severity,
            ..
        } = ev
        {
            let slot = per_op
                .entry(*op)
                .or_insert_with(|| (name.clone(), Vec::new()));
            if last_health.get(op) != Some(health) {
                slot.1
                    .push(format!("t={t:>7.1}  -> {health} (severity {severity:.2})"));
                last_health.insert(*op, health.clone());
            }
        }
    }
    for (op, (name, transitions)) in &per_op {
        let _ = writeln!(out, "op {op} ({name}):");
        for line in transitions {
            let _ = writeln!(out, "  {line}");
        }
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "Summary");
    let _ = writeln!(out, "-------");
    let _ = writeln!(
        out,
        "monitor rounds: {rounds}  decisions: {decisions}  rejections: {rejections}"
    );
    let _ = writeln!(
        out,
        "migrations: {migrations} ({aborted} aborted)  checkpoint rounds: {checkpoints}"
    );
    let _ = writeln!(out, "max span depth: {}", rec.max_span_depth());
    out
}
