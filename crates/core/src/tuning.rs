//! Automatic tuning of the bandwidth-headroom parameter α.
//!
//! The paper fixes α = 0.8 and notes (§4.1): *"Setting the α parameter
//! too high (∼1) leads to greater impact of misestimation and makes
//! the system unstable, while setting it too low leads to a
//! non-optimal optimization. The automatic determination of the α
//! parameter could probably benefit from the use of machine-learning
//! techniques, an optimization that we leave for future work."*
//!
//! [`AlphaTuner`] implements that future work with a simple,
//! explainable feedback rule instead of ML:
//!
//! * adaptations arriving in *quick succession* mean the previous
//!   placement immediately proved inadequate — a symptom of too little
//!   headroom — so α steps **down** (more headroom, more stability);
//! * a *long stable streak* means headroom is being wasted, so α creeps
//!   **up** toward its ceiling (better utilization).
//!
//! The asymmetric step sizes (fast down, slow up) follow the paper's
//! own stability-over-utilization preference (§4.2).

use serde::{Deserialize, Serialize};

/// Feedback controller for α. See the module docs for the rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AlphaTuner {
    alpha: f64,
    /// Lower bound (never give up more headroom than this).
    pub min_alpha: f64,
    /// Upper bound (never run closer to the wire than this).
    pub max_alpha: f64,
    /// Decrease applied when instability is detected.
    pub down_step: f64,
    /// Increase applied after a stable streak.
    pub up_step: f64,
    /// Two actions within this many rounds count as instability.
    pub relapse_rounds: u32,
    /// Healthy rounds required before α may creep up.
    pub stable_rounds: u32,
    rounds_since_action: u32,
    stable_streak: u32,
}

impl AlphaTuner {
    /// Creates a tuner starting from the paper's default α = 0.8.
    pub fn new() -> AlphaTuner {
        AlphaTuner::starting_at(0.8)
    }

    /// Creates a tuner with an explicit starting α.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn starting_at(alpha: f64) -> AlphaTuner {
        assert!(alpha > 0.0 && alpha < 1.0, "α must lie in (0, 1)");
        AlphaTuner {
            alpha,
            min_alpha: 0.5,
            max_alpha: 0.95,
            down_step: 0.05,
            up_step: 0.01,
            relapse_rounds: 3,
            stable_rounds: 10,
            rounds_since_action: u32::MAX,
            stable_streak: 0,
        }
    }

    /// Current α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feeds one monitoring round's outcome (`acted` = an adaptation
    /// was applied this round) and returns the α to use next round.
    pub fn on_round(&mut self, acted: bool) -> f64 {
        if acted {
            // A relapse — a new action shortly after the previous one —
            // means the last decision under-provisioned headroom.
            if self.rounds_since_action <= self.relapse_rounds {
                self.alpha = (self.alpha - self.down_step).max(self.min_alpha);
            }
            self.rounds_since_action = 0;
            self.stable_streak = 0;
        } else {
            self.rounds_since_action = self.rounds_since_action.saturating_add(1);
            self.stable_streak += 1;
            if self.stable_streak >= self.stable_rounds {
                self.alpha = (self.alpha + self.up_step).min(self.max_alpha);
                self.stable_streak = 0;
            }
        }
        self.alpha
    }
}

impl Default for AlphaTuner {
    fn default() -> Self {
        AlphaTuner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_the_paper_default() {
        assert_eq!(AlphaTuner::new().alpha(), 0.8);
    }

    #[test]
    #[should_panic(expected = "α must lie in (0, 1)")]
    fn rejects_out_of_range_alpha() {
        let _ = AlphaTuner::starting_at(1.0);
    }

    #[test]
    fn rapid_readaptation_lowers_alpha() {
        let mut t = AlphaTuner::new();
        t.on_round(true); // first action: no penalty (no prior action)
        assert_eq!(t.alpha(), 0.8);
        t.on_round(true); // immediate relapse → step down
        assert!((t.alpha() - 0.75).abs() < 1e-12);
        t.on_round(false);
        t.on_round(true); // relapse within 3 rounds → step down again
        assert!((t.alpha() - 0.70).abs() < 1e-12);
    }

    #[test]
    fn isolated_actions_do_not_lower_alpha() {
        let mut t = AlphaTuner::new();
        t.on_round(true);
        for _ in 0..5 {
            t.on_round(false);
        }
        t.on_round(true); // 5 calm rounds in between: not a relapse
        assert_eq!(t.alpha(), 0.8);
    }

    #[test]
    fn long_stability_raises_alpha_to_the_ceiling() {
        let mut t = AlphaTuner::new();
        for _ in 0..1000 {
            t.on_round(false);
        }
        assert!((t.alpha() - t.max_alpha).abs() < 1e-12);
    }

    #[test]
    fn alpha_never_leaves_its_bounds() {
        let mut t = AlphaTuner::new();
        for _ in 0..100 {
            t.on_round(true); // pathological thrash
        }
        assert!(t.alpha() >= t.min_alpha - 1e-12);
        for _ in 0..10_000 {
            t.on_round(false);
        }
        assert!(t.alpha() <= t.max_alpha + 1e-12);
    }

    #[test]
    fn action_resets_the_stable_streak() {
        let mut t = AlphaTuner::new();
        for _ in 0..9 {
            t.on_round(false);
        }
        t.on_round(true); // streak broken at 9 < 10
        assert_eq!(t.alpha(), 0.8);
    }
}
