//! Quickstart: deploy a small wide-area query, inject a workload
//! spike, and watch WASP keep it healthy.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wasp_core::prelude::*;
use wasp_netsim::prelude::*;
use wasp_streamsim::prelude::*;
use wasp_workloads::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A tiny wide-area world: two edge clusters and two data
    //    centers, modest public-Internet uplinks.
    let mut b = TopologyBuilder::new();
    let edge_a = b.add_site("edge-a", SiteKind::Edge, 3);
    let edge_b = b.add_site("edge-b", SiteKind::Edge, 3);
    let dc1 = b.add_site("dc-1", SiteKind::DataCenter, 8);
    let dc2 = b.add_site("dc-2", SiteKind::DataCenter, 8);
    b.set_all_links(Mbps(4.0), Millis(40.0));
    b.set_symmetric_link(dc1, dc2, Mbps(150.0), Millis(10.0));
    let net = Network::new(b.build()?);

    // 2. A streaming query: two geo-distributed sources, a filter, a
    //    10-second windowed aggregation, and a sink at dc-1.
    let mut p = LogicalPlanBuilder::new("quickstart");
    let sources: Vec<OpId> = [edge_a, edge_b]
        .iter()
        .enumerate()
        .map(|(i, &site)| {
            p.add(OperatorSpec::new(
                format!("src-{i}"),
                OperatorKind::Source {
                    site,
                    base_rate: 10_000.0,
                    event_bytes: 20.0,
                },
            ))
        })
        .collect();
    let filter = p.add(
        OperatorSpec::new("filter", OperatorKind::Filter)
            .with_selectivity(0.25)
            .with_cost_us(5.0),
    );
    let window = p.add(
        OperatorSpec::new("agg", OperatorKind::WindowAggregate { window_s: 10.0 })
            .with_selectivity(0.002)
            .with_state(StateModel::Fixed(MegaBytes(20.0))),
    );
    let sink = p.add(OperatorSpec::new(
        "sink",
        OperatorKind::Sink { site: Some(dc1) },
    ));
    for s in sources {
        p.connect(s, filter);
    }
    p.connect(filter, window);
    p.connect(window, sink);
    let plan = p.build()?;

    // 3. WAN-aware initial deployment (one task per operator).
    let physical = initial_deployment(&plan, &net, 0.8)?;
    println!("initial deployment:");
    for op in plan.op_ids() {
        println!("  {:<8} -> {}", plan.op(op).name(), physical.placement(op));
    }

    // 4. The workload triples at t = 120 s.
    let script =
        DynamicsScript::none().with_global_workload(FactorSeries::steps(1.0, &[(120.0, 3.0)]));
    let mut engine = Engine::new(net, script, plan, physical, EngineConfig::default())?;

    // 5. Run under the WASP controller with a 40 s monitoring
    //    interval.
    let mut wasp = WaspController::new(PolicyConfig::default());
    run_controlled(&mut engine, &mut wasp, 600.0, 40.0);

    // 6. Report.
    let final_placement = engine.physical().clone();
    let plan = engine.plan().clone();
    let metrics = engine.into_metrics();
    println!("\nadaptations taken:");
    for (t, action) in metrics.actions() {
        if !action.starts_with("transition") {
            println!("  t={t:>6.0}s  {action}");
        }
    }
    println!("\nfinal deployment:");
    for op in plan.op_ids() {
        println!(
            "  {:<8} -> {}",
            plan.op(op).name(),
            final_placement.placement(op)
        );
    }
    println!("\ndelay over time (60 s buckets):");
    for (t, d) in metrics.delay_series(60.0) {
        println!("  t={t:>6.0}s  mean delay {d:>6.2}s");
    }
    println!(
        "\ndelivered {:.0} of {:.0} generated events ({} dropped)",
        metrics.total_delivered(),
        metrics.total_generated(),
        metrics.total_dropped()
    );
    Ok(())
}
