//! Network-aware state-migration planning (§5, §6.2, §8.7.1).
//!
//! When a re-assignment moves a stage off sites `S − S'` onto sites
//! `S' − S`, each departing site's state must be shipped to one of the
//! new sites. The adaptation overhead is dominated by the *slowest*
//! transfer, so WASP solves
//!
//! ```text
//! min  max ( |state_s1| / B(s1→s2) )   over assignments s1 → s2
//! ```
//!
//! This module solves that min-max assignment exactly: binary search
//! over the candidate bottleneck values (every pairwise transfer time)
//! with a Hopcroft–Karp perfect-matching feasibility test. It also
//! provides the paper's baselines — `Random` and `Distant` mappings —
//! used in Fig. 13.

use crate::matching::Bipartite;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wasp_netsim::network::Network;
use wasp_netsim::site::SiteId;
use wasp_netsim::units::{MegaBytes, SimTime};
use wasp_streamsim::engine::Transfer;

/// A migration plan: the chosen transfers plus the bottleneck time.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// One transfer per departing site.
    pub transfers: Vec<Transfer>,
    /// `max |state|/B` over the plan, seconds — the paper's `t_adapt`
    /// estimate.
    pub bottleneck_s: f64,
}

impl MigrationPlan {
    /// An empty plan (nothing to migrate).
    pub fn empty() -> MigrationPlan {
        MigrationPlan {
            transfers: Vec::new(),
            bottleneck_s: 0.0,
        }
    }

    /// Total volume moved.
    pub fn total_mb(&self) -> MegaBytes {
        MegaBytes(self.transfers.iter().map(|t| t.mb.0).sum())
    }
}

/// Strategy for mapping departing state to destination sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationStrategy {
    /// WASP: min-max over transfer times (network-aware).
    NetworkAware,
    /// Baseline: uniformly random mapping (seeded).
    Random(u64),
    /// Baseline: deliberately pick the slowest mapping (the paper's
    /// `Distant` strawman).
    Distant,
}

/// Plans the state migration for a re-assignment.
///
/// `sources` are the departing sites with their state sizes; `dests`
/// the candidate destination sites (each absorbs at most
/// `⌈|sources| / |dests|⌉` transfers, so the plan always exists when
/// `dests` is non-empty).
///
/// Returns [`MigrationPlan::empty`] when there is nothing to move.
pub fn plan_migration(
    sources: &[(SiteId, MegaBytes)],
    dests: &[SiteId],
    net: &Network,
    t: SimTime,
    strategy: MigrationStrategy,
) -> MigrationPlan {
    let sources: Vec<(SiteId, MegaBytes)> = sources
        .iter()
        .copied()
        .filter(|(_, mb)| mb.0 > 0.0)
        .collect();
    if sources.is_empty() || dests.is_empty() {
        return MigrationPlan::empty();
    }
    match strategy {
        MigrationStrategy::NetworkAware => minmax_plan(&sources, dests, net, t),
        MigrationStrategy::Random(seed) => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut order: Vec<SiteId> = assignments_pool(dests, sources.len());
            order.shuffle(&mut rng);
            build_plan(&sources, &order, net, t)
        }
        MigrationStrategy::Distant => {
            // For each source pick the destination with the slowest
            // transfer (respecting the capacity pool).
            let mut pool = assignments_pool(dests, sources.len());
            let mut chosen = Vec::with_capacity(sources.len());
            for &(s, mb) in &sources {
                let (idx, _) = pool
                    .iter()
                    .enumerate()
                    .max_by(|(_, &a), (_, &b)| {
                        let ta = mb.transfer_time(net.available(s, a, t));
                        let tb = mb.transfer_time(net.available(s, b, t));
                        ta.total_cmp(&tb)
                    })
                    .expect("pool is non-empty");
                chosen.push(pool.swap_remove(idx));
            }
            build_plan(&sources, &chosen, net, t)
        }
    }
}

/// Destination pool with capacity `⌈n/|dests|⌉` each.
fn assignments_pool(dests: &[SiteId], n: usize) -> Vec<SiteId> {
    let cap = n.div_ceil(dests.len());
    let mut pool = Vec::with_capacity(cap * dests.len());
    for _ in 0..cap {
        pool.extend_from_slice(dests);
    }
    pool.truncate(pool.len().max(n));
    pool
}

fn build_plan(
    sources: &[(SiteId, MegaBytes)],
    dests_in_order: &[SiteId],
    net: &Network,
    t: SimTime,
) -> MigrationPlan {
    let mut transfers = Vec::with_capacity(sources.len());
    let mut bottleneck: f64 = 0.0;
    for (&(s, mb), &d) in sources.iter().zip(dests_in_order) {
        bottleneck = bottleneck.max(mb.transfer_time(net.available(s, d, t)));
        transfers.push(Transfer::new(s, d, mb));
    }
    MigrationPlan {
        transfers,
        bottleneck_s: bottleneck,
    }
}

fn minmax_plan(
    sources: &[(SiteId, MegaBytes)],
    dests: &[SiteId],
    net: &Network,
    t: SimTime,
) -> MigrationPlan {
    let pool = assignments_pool(dests, sources.len());
    // All candidate bottleneck values.
    let mut times: Vec<f64> = Vec::with_capacity(sources.len() * pool.len());
    let mut cost = vec![vec![0.0f64; pool.len()]; sources.len()];
    for (i, &(s, mb)) in sources.iter().enumerate() {
        for (j, &d) in pool.iter().enumerate() {
            let time = mb.transfer_time(net.available(s, d, t));
            cost[i][j] = time;
            times.push(time);
        }
    }
    times.retain(|x| x.is_finite());
    times.sort_by(|a, b| a.total_cmp(b));
    times.dedup();

    let feasible = |limit: f64| -> Option<Vec<Option<usize>>> {
        let mut g = Bipartite::new(sources.len(), pool.len());
        for (i, row) in cost.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c <= limit {
                    g.add_edge(i, j);
                }
            }
        }
        let m = g.maximum_matching();
        if m.iter().flatten().count() == sources.len() {
            Some(m)
        } else {
            None
        }
    };

    // Binary search the smallest feasible bottleneck.
    let mut lo = 0usize;
    let mut hi = times.len();
    let mut best: Option<(f64, Vec<Option<usize>>)> = None;
    while lo < hi {
        let mid = (lo + hi) / 2;
        if let Some(m) = feasible(times[mid]) {
            best = Some((times[mid], m));
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let Some((bottleneck, matching)) = best else {
        // No finite-time mapping exists (all links down): fall back to
        // pairing in order so the caller still gets a deterministic
        // plan (with an infinite bottleneck estimate).
        return build_plan(sources, &pool, net, t);
    };
    let mut transfers = Vec::with_capacity(sources.len());
    for (i, &(s, mb)) in sources.iter().enumerate() {
        let j = matching[i].expect("perfect matching covers all sources");
        transfers.push(Transfer::new(s, pool[j], mb));
    }
    MigrationPlan {
        transfers,
        bottleneck_s: bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasp_netsim::site::SiteKind;
    use wasp_netsim::topology::TopologyBuilder;
    use wasp_netsim::units::{Mbps, Millis};

    /// Sites 0,1 depart; 2,3 receive. B(0→2)=80, B(0→3)=8,
    /// B(1→2)=40, B(1→3)=40.
    fn net() -> (Network, Vec<SiteId>) {
        let mut b = TopologyBuilder::new();
        let s: Vec<SiteId> = (0..4)
            .map(|i| b.add_site(format!("s{i}"), SiteKind::DataCenter, 4))
            .collect();
        b.set_all_links(Mbps(40.0), Millis(10.0));
        b.set_link(s[0], s[2], Mbps(80.0), Millis(10.0));
        b.set_link(s[0], s[3], Mbps(8.0), Millis(10.0));
        (Network::new(b.build().unwrap()), s)
    }

    #[test]
    fn network_aware_avoids_slow_link() {
        let (net, s) = net();
        // 60 MB each. Greedy "0→best" would send 0→2 (6 s) and force
        // 1→3 (12 s). But min-max picks 0→2/1→3 anyway (12s)? No:
        // 0→2: 6s, 0→3: 60s; 1→2: 12s, 1→3: 12s. Options:
        //   {0→2, 1→3} → max(6,12)=12
        //   {0→3, 1→2} → max(60,12)=60
        // Min-max must pick 12 s.
        let sources = [(s[0], MegaBytes(60.0)), (s[1], MegaBytes(60.0))];
        let plan = plan_migration(
            &sources,
            &[s[2], s[3]],
            &net,
            SimTime::ZERO,
            MigrationStrategy::NetworkAware,
        );
        assert!((plan.bottleneck_s - 12.0).abs() < 1e-6, "{plan:?}");
        assert_eq!(plan.transfers.len(), 2);
        let t0 = plan.transfers.iter().find(|t| t.from == s[0]).unwrap();
        assert_eq!(t0.to, s[2]);
    }

    #[test]
    fn distant_is_worse_than_network_aware() {
        let (net, s) = net();
        let sources = [(s[0], MegaBytes(60.0)), (s[1], MegaBytes(60.0))];
        let aware = plan_migration(
            &sources,
            &[s[2], s[3]],
            &net,
            SimTime::ZERO,
            MigrationStrategy::NetworkAware,
        );
        let distant = plan_migration(
            &sources,
            &[s[2], s[3]],
            &net,
            SimTime::ZERO,
            MigrationStrategy::Distant,
        );
        assert!(distant.bottleneck_s >= aware.bottleneck_s);
        assert!((distant.bottleneck_s - 60.0).abs() < 1e-6, "{distant:?}");
    }

    #[test]
    fn random_is_deterministic_per_seed_and_valid() {
        let (net, s) = net();
        let sources = [(s[0], MegaBytes(30.0)), (s[1], MegaBytes(30.0))];
        let a = plan_migration(
            &sources,
            &[s[2], s[3]],
            &net,
            SimTime::ZERO,
            MigrationStrategy::Random(9),
        );
        let b = plan_migration(
            &sources,
            &[s[2], s[3]],
            &net,
            SimTime::ZERO,
            MigrationStrategy::Random(9),
        );
        assert_eq!(a, b);
        // Each source mapped exactly once, destinations distinct.
        assert_eq!(a.transfers.len(), 2);
        assert_ne!(a.transfers[0].to, a.transfers[1].to);
    }

    #[test]
    fn empty_inputs_produce_empty_plan() {
        let (net, s) = net();
        let plan = plan_migration(
            &[],
            &[s[2]],
            &net,
            SimTime::ZERO,
            MigrationStrategy::NetworkAware,
        );
        assert_eq!(plan, MigrationPlan::empty());
        let plan = plan_migration(
            &[(s[0], MegaBytes(0.0))],
            &[s[2]],
            &net,
            SimTime::ZERO,
            MigrationStrategy::NetworkAware,
        );
        assert_eq!(plan, MigrationPlan::empty());
    }

    #[test]
    fn more_sources_than_destinations_shares_dests() {
        let (net, s) = net();
        let sources = [
            (s[0], MegaBytes(10.0)),
            (s[1], MegaBytes(10.0)),
            (s[2], MegaBytes(10.0)),
        ];
        let plan = plan_migration(
            &sources,
            &[s[3]],
            &net,
            SimTime::ZERO,
            MigrationStrategy::NetworkAware,
        );
        assert_eq!(plan.transfers.len(), 3);
        assert!(plan.transfers.iter().all(|t| t.to == s[3]));
    }

    #[test]
    fn minmax_is_optimal_against_bruteforce() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..40 {
            // Random 3×3 instance on a random topology.
            let mut b = TopologyBuilder::new();
            let s: Vec<SiteId> = (0..6)
                .map(|i| b.add_site(format!("s{i}"), SiteKind::DataCenter, 2))
                .collect();
            for i in 0..6u16 {
                for j in 0..6u16 {
                    if i != j {
                        b.set_link(
                            SiteId(i),
                            SiteId(j),
                            Mbps(rng.gen_range(5.0..100.0)),
                            Millis(10.0),
                        );
                    }
                }
            }
            let net = Network::new(b.build().unwrap());
            let sources: Vec<(SiteId, MegaBytes)> = (0..3)
                .map(|i| (s[i], MegaBytes(rng.gen_range(1.0..100.0))))
                .collect();
            let dests = [s[3], s[4], s[5]];
            let plan = plan_migration(
                &sources,
                &dests,
                &net,
                SimTime::ZERO,
                MigrationStrategy::NetworkAware,
            );
            // Brute force over all 6 permutations.
            let perms = [
                [0, 1, 2],
                [0, 2, 1],
                [1, 0, 2],
                [1, 2, 0],
                [2, 0, 1],
                [2, 1, 0],
            ];
            let best = perms
                .iter()
                .map(|perm| {
                    sources
                        .iter()
                        .zip(perm.iter())
                        .map(|(&(src, mb), &j)| {
                            mb.transfer_time(net.available(src, dests[j], SimTime::ZERO))
                        })
                        .fold(0.0f64, f64::max)
                })
                .fold(f64::INFINITY, f64::min);
            assert!(
                (plan.bottleneck_s - best).abs() < 1e-9,
                "minmax {} vs brute {}",
                plan.bottleneck_s,
                best
            );
        }
    }
}
