# ablation-alpha — Bandwidth headroom α: stability vs. utilization (§4.1)
# α=0.50: p95 delay    3.7 s, 8 adaptations, peak tasks 17
# α=0.65: p95 delay    3.7 s, 7 adaptations, peak tasks 15
# α=0.80: p95 delay    3.7 s, 5 adaptations, peak tasks 14
# α=0.95: p95 delay    3.7 s, 5 adaptations, peak tasks 14
# adaptive: p95 delay    3.7 s, 5 adaptations, final α = 0.75
set title "Bandwidth headroom α: stability vs. utilization (§4.1)"
set key outside
set grid
set xlabel "α"
set ylabel "p95 delay (s) / adaptations"
$data0 << EOD
0.5 3.7128176594991897
0.65 3.7363040193047596
0.8 3.7483784081328566
0.95 3.7483784081328566
EOD
$data1 << EOD
0.5 8
0.65 7
0.8 5
0.95 5
EOD
plot $data0 using 1:2 with linespoints title "p95-delay", \
     $data1 using 1:2 with linespoints title "adaptations"
pause -1 "press enter"
