# ablation-monitor — Monitoring interval: detection latency vs. noise (§8.2)
# interval    10 s: detection latency   10.0 s, p95 delay    2.2 s, 6 adaptations
# interval    20 s: detection latency   40.0 s, p95 delay    3.7 s, 5 adaptations
# interval    40 s: detection latency   60.0 s, p95 delay    3.7 s, 5 adaptations
# interval    80 s: detection latency  100.0 s, p95 delay   10.9 s, 5 adaptations
# interval   160 s: detection latency   20.0 s, p95 delay   20.9 s, 4 adaptations
set title "Monitoring interval: detection latency vs. noise (§8.2)"
set key outside
set grid
set xlabel "interval (s)"
set ylabel "detection latency (s) / p95 delay (s)"
$data0 << EOD
10 10
20 40
40 60
80 100
160 20
EOD
$data1 << EOD
10 2.195703606061324
20 3.7483784081328566
40 3.7483784081328566
80 10.94426353503763
160 20.896132530275132
EOD
plot $data0 using 1:2 with linespoints title "detection-latency", \
     $data1 using 1:2 with linespoints title "p95-delay"
pause -1 "press enter"
