//! `Serialize`/`Deserialize` implementations for primitives and the
//! standard containers the workspace serializes.

use crate::content::Content;
use crate::de::{self, Deserialize, Deserializer};
use crate::ser::{to_content, Serialize, Serializer};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

// ---------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    serializer.serialize_content(Content::U64(v as u64))
                } else {
                    serializer.serialize_content(Content::I64(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::F64(*self as f64))
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.clone()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_content(Content::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn ser_iter<'a, T, S, I>(iter: I, serializer: S) -> Result<S::Ok, S::Error>
where
    T: Serialize + 'a,
    S: Serializer,
    I: Iterator<Item = &'a T>,
{
    let mut seq = Vec::new();
    for item in iter {
        seq.push(to_content::<T, S::Error>(item)?);
    }
    serializer.serialize_content(Content::Seq(seq))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_iter(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_iter(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_iter(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        ser_iter(self.iter(), serializer)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::new();
        for (k, v) in self {
            entries.push((to_content::<K, S::Error>(k)?, to_content::<V, S::Error>(v)?));
        }
        serializer.serialize_content(Content::Map(entries))
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let seq = vec![$(to_content::<$t, S::Error>(&self.$n)?),+];
                serializer.serialize_content(Content::Seq(seq))
            }
        }
    )*};
}
ser_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 W, 1 X, 2 Y, 3 Z)
}

// ---------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------

fn type_err<E: de::Error>(expected: &str, got: &Content) -> E {
    E::custom(format!("expected {expected}, got {got:?}"))
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(type_err("a bool", &other)),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                match &content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| type_err(stringify!($t), &content)),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| type_err(stringify!($t), &content)),
                    // Stringified numeric map keys round-trip here.
                    Content::Str(s) => s
                        .parse::<$t>()
                        .map_err(|_| type_err(stringify!($t), &content)),
                    Content::F64(v) if v.fract() == 0.0 => Ok(*v as $t),
                    _ => Err(type_err(stringify!($t), &content)),
                }
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! de_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                match &content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    Content::Str(s) => s
                        .parse::<$t>()
                        .map_err(|_| type_err(stringify!($t), &content)),
                    _ => Err(type_err(stringify!($t), &content)),
                }
            }
        }
    )*};
}
de_float!(f32, f64);

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(type_err("a string", &other)),
        }
    }
}

impl<'de, T> Deserialize<'de> for Option<T>
where
    T: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            content => Ok(Some(de::from_content(content)?)),
        }
    }
}

fn de_seq<T, E>(content: Content) -> Result<Vec<T>, E>
where
    T: for<'a> Deserialize<'a>,
    E: de::Error,
{
    match content {
        Content::Seq(items) => items.into_iter().map(de::from_content).collect(),
        other => Err(type_err("a sequence", &other)),
    }
}

impl<'de, T> Deserialize<'de> for Vec<T>
where
    T: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        de_seq(deserializer.deserialize_content()?)
    }
}

impl<'de, T> Deserialize<'de> for VecDeque<T>
where
    T: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(de_seq::<T, D::Error>(deserializer.deserialize_content()?)?.into())
    }
}

impl<'de, T> Deserialize<'de> for BTreeSet<T>
where
    T: for<'a> Deserialize<'a> + Ord,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(de_seq::<T, D::Error>(deserializer.deserialize_content()?)?
            .into_iter()
            .collect())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: for<'a> Deserialize<'a> + Ord,
    V: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    Ok((
                        de::from_content::<K, D::Error>(k)?,
                        de::from_content::<V, D::Error>(v)?,
                    ))
                })
                .collect(),
            other => Err(type_err("a map", &other)),
        }
    }
}

macro_rules! de_tuple {
    ($(($len:literal, $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t),+> Deserialize<'de> for ($($t,)+)
        where
            $($t: for<'a> Deserialize<'a>),+
        {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(
                            de::from_content::<$t, D::Error>(
                                it.next().expect("length checked"),
                            )?,
                        )+))
                    }
                    other => Err(type_err(concat!("a tuple of ", $len), &other)),
                }
            }
        }
    )*};
}
de_tuple! {
    (2, 0 A, 1 B)
    (3, 0 A, 1 B, 2 C)
    (4, 0 W, 1 X, 2 Y, 3 Z)
}
